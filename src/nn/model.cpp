#include "nn/model.hpp"

#include "util/error.hpp"

namespace dshuf::nn {

Model::Model(Model&& other) noexcept
    : layers_(std::move(other.layers_)),
      ws_(std::move(other.ws_)),
      param_cache_(std::move(other.param_cache_)),
      param_cache_valid_(other.param_cache_valid_) {
  attach_layers();
}

Model& Model::operator=(Model&& other) noexcept {
  if (this != &other) {
    layers_ = std::move(other.layers_);
    ws_ = std::move(other.ws_);
    param_cache_ = std::move(other.param_cache_);
    param_cache_valid_ = other.param_cache_valid_;
    attach_layers();
  }
  return *this;
}

void Model::attach_layers() {
  for (auto& l : layers_) l->set_workspace(&ws_);
}

Model& Model::add(LayerPtr layer) {
  DSHUF_CHECK(layer != nullptr, "cannot add a null layer");
  layer->set_workspace(&ws_);
  layers_.push_back(std::move(layer));
  param_cache_valid_ = false;
  return *this;
}

const Tensor& Model::forward(const Tensor& x, bool training) {
  // Stage the input in slot 0 so every layer's cached input pointer
  // refers to model-owned storage that outlives the backward pass.
  copy_into(x, ws_.slot(nullptr, 0));
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Tensor& in = ws_.slot(nullptr, static_cast<int>(i));
    Tensor& out = ws_.slot(nullptr, static_cast<int>(i) + 1);
    layers_[i]->forward_into(in, out, training);
  }
  return ws_.slot(nullptr, static_cast<int>(layers_.size()));
}

void Model::backward(const Tensor& grad_out) {
  const Tensor* g = &grad_out;
  int next_slot = kGradSlotA;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    Tensor& out = ws_.slot(nullptr, next_slot);
    (*it)->backward_into(*g, out);
    g = &out;
    next_slot = next_slot == kGradSlotA ? kGradSlotB : kGradSlotA;
  }
}

const std::vector<Param*>& Model::param_refs() {
  if (!param_cache_valid_) {
    param_cache_.clear();
    for (auto& l : layers_) {
      for (Param* p : l->params()) param_cache_.push_back(p);
    }
    param_cache_valid_ = true;
  }
  return param_cache_;
}

void Model::zero_grad() {
  for (Param* p : param_refs()) p->grad.zero();
}

void Model::scale_grad(float factor) {
  for (Param* p : param_refs()) p->grad.scale(factor);
}

std::size_t Model::num_params() {
  std::size_t n = 0;
  for (Param* p : param_refs()) n += p->value.size();
  return n;
}

std::vector<float> Model::state() {
  std::vector<float> s;
  for (Param* p : param_refs()) {
    s.insert(s.end(), p->value.vec().begin(), p->value.vec().end());
  }
  return s;
}

void Model::load_state(const std::vector<float>& s) {
  std::size_t off = 0;
  for (Param* p : param_refs()) {
    DSHUF_CHECK_LE(off + p->value.size(), s.size(),
                   "state vector too small for model");
    std::copy(s.begin() + static_cast<std::ptrdiff_t>(off),
              s.begin() + static_cast<std::ptrdiff_t>(off + p->value.size()),
              p->value.vec().begin());
    off += p->value.size();
  }
  DSHUF_CHECK_EQ(off, s.size(), "state vector size mismatch");
}

std::vector<Tensor*> Model::buffers() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* b : l->buffers()) out.push_back(b);
  }
  return out;
}

std::vector<float> Model::buffer_state() {
  std::vector<float> s;
  for (Tensor* b : buffers()) {
    s.insert(s.end(), b->vec().begin(), b->vec().end());
  }
  return s;
}

void Model::load_buffer_state(const std::vector<float>& s) {
  std::size_t off = 0;
  for (Tensor* b : buffers()) {
    DSHUF_CHECK_LE(off + b->size(), s.size(),
                   "buffer state vector too small for model");
    std::copy(s.begin() + static_cast<std::ptrdiff_t>(off),
              s.begin() + static_cast<std::ptrdiff_t>(off + b->size()),
              b->vec().begin());
    off += b->size();
  }
  DSHUF_CHECK_EQ(off, s.size(), "buffer state vector size mismatch");
}

std::vector<float> Model::gradients() {
  std::vector<float> g;
  for (Param* p : param_refs()) {
    g.insert(g.end(), p->grad.vec().begin(), p->grad.vec().end());
  }
  return g;
}

std::vector<Layer*> Model::layers() {
  std::vector<Layer*> out;
  out.reserve(layers_.size());
  for (auto& l : layers_) out.push_back(l.get());
  return out;
}

void Model::pop_layers(std::size_t n) {
  DSHUF_CHECK_LE(n, layers_.size(), "cannot pop more layers than exist");
  layers_.resize(layers_.size() - n);
  param_cache_valid_ = false;
}

}  // namespace dshuf::nn
