#include "nn/model.hpp"

#include "util/error.hpp"

namespace dshuf::nn {

Model& Model::add(LayerPtr layer) {
  DSHUF_CHECK(layer != nullptr, "cannot add a null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Model::forward(const Tensor& x, bool training) {
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h, training);
  return h;
}

void Model::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
}

std::vector<Param*> Model::params() {
  std::vector<Param*> out;
  for (auto& l : layers_) {
    for (Param* p : l->params()) out.push_back(p);
  }
  return out;
}

void Model::zero_grad() {
  for (Param* p : params()) p->grad.zero();
}

void Model::scale_grad(float factor) {
  for (Param* p : params()) p->grad.scale(factor);
}

std::size_t Model::num_params() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.size();
  return n;
}

std::vector<float> Model::state() {
  std::vector<float> s;
  for (Param* p : params()) {
    s.insert(s.end(), p->value.vec().begin(), p->value.vec().end());
  }
  return s;
}

void Model::load_state(const std::vector<float>& s) {
  std::size_t off = 0;
  for (Param* p : params()) {
    DSHUF_CHECK_LE(off + p->value.size(), s.size(),
                   "state vector too small for model");
    std::copy(s.begin() + static_cast<std::ptrdiff_t>(off),
              s.begin() + static_cast<std::ptrdiff_t>(off + p->value.size()),
              p->value.vec().begin());
    off += p->value.size();
  }
  DSHUF_CHECK_EQ(off, s.size(), "state vector size mismatch");
}

std::vector<Tensor*> Model::buffers() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* b : l->buffers()) out.push_back(b);
  }
  return out;
}

std::vector<float> Model::buffer_state() {
  std::vector<float> s;
  for (Tensor* b : buffers()) {
    s.insert(s.end(), b->vec().begin(), b->vec().end());
  }
  return s;
}

void Model::load_buffer_state(const std::vector<float>& s) {
  std::size_t off = 0;
  for (Tensor* b : buffers()) {
    DSHUF_CHECK_LE(off + b->size(), s.size(),
                   "buffer state vector too small for model");
    std::copy(s.begin() + static_cast<std::ptrdiff_t>(off),
              s.begin() + static_cast<std::ptrdiff_t>(off + b->size()),
              b->vec().begin());
    off += b->size();
  }
  DSHUF_CHECK_EQ(off, s.size(), "buffer state vector size mismatch");
}

std::vector<float> Model::gradients() {
  std::vector<float> g;
  for (Param* p : params()) {
    g.insert(g.end(), p->grad.vec().begin(), p->grad.vec().end());
  }
  return g;
}

std::vector<Layer*> Model::layers() {
  std::vector<Layer*> out;
  out.reserve(layers_.size());
  for (auto& l : layers_) out.push_back(l.get());
  return out;
}

void Model::pop_layers(std::size_t n) {
  DSHUF_CHECK_LE(n, layers_.size(), "cannot pop more layers than exist");
  layers_.resize(layers_.size() - n);
}

}  // namespace dshuf::nn
