// Normalisation layers.
//
// BatchNorm1d is the load-bearing layer for this reproduction: the paper
// (Section IV-A-1) attributes local shuffling's accuracy gap largely to
// batch statistics being computed on each worker's (possibly class-skewed,
// small) local minibatch. Because the simulator runs each virtual worker's
// forward/backward separately against the shared model, BatchNorm batch
// statistics are naturally per-worker — exactly like unsynchronised BN in
// DDP. GroupNorm is provided as the paper's suggested batch-independent
// alternative for the ablation study.
#pragma once

#include "nn/layer.hpp"

namespace dshuf::nn {

/// 1-D batch normalisation over the batch dimension of an [N, C] input.
class BatchNorm1d : public Layer {
 public:
  explicit BatchNorm1d(std::size_t features, float momentum = 0.1F,
                       float eps = 1e-5F);

  void forward_into(const Tensor& x, Tensor& y, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> buffers() override {
    return {&running_mean_, &running_var_};
  }
  [[nodiscard]] std::string name() const override { return "BatchNorm1d"; }

  /// Running statistics (used at eval); exposed for tests and for the
  /// simulator's cross-worker running-stat averaging.
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

 private:
  // Scratch slots for the forward caches backward reads.
  static constexpr int kXhatSlot = 0;     // [N, C]
  static constexpr int kInvStdSlot = 1;   // [C]

  std::size_t features_;
  float momentum_;
  float eps_;
  Param gamma_;
  Param beta_;
  Tensor running_mean_;
  Tensor running_var_;
  std::size_t cached_batch_ = 0;
};

/// Group normalisation over an [N, C] input with G groups of C/G channels.
/// Statistics are per-sample, per-group — independent of batch composition,
/// hence insensitive to how samples are sharded across workers.
class GroupNorm : public Layer {
 public:
  GroupNorm(std::size_t features, std::size_t groups, float eps = 1e-5F);

  void forward_into(const Tensor& x, Tensor& y, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  [[nodiscard]] std::string name() const override { return "GroupNorm"; }

 private:
  static constexpr int kXhatSlot = 0;     // [N, C]
  static constexpr int kInvStdSlot = 1;   // [N, G]

  std::size_t features_;
  std::size_t groups_;
  std::size_t group_size_;
  float eps_;
  Param gamma_;
  Param beta_;
};

}  // namespace dshuf::nn
