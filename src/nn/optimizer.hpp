// Optimisers and learning-rate schedules.
//
// SGD with momentum + weight decay matches the paper's reference regimes
// (Goyal et al. for ImageNet). LARS (You et al.) is the paper's choice for
// large-batch scaling (>512 workers); we implement the layer-wise trust
// ratio on top of momentum SGD exactly as in the LARS paper.
#pragma once

#include <vector>

#include "nn/model.hpp"

namespace dshuf::nn {

struct SgdConfig {
  float lr = 0.1F;
  float momentum = 0.9F;
  float weight_decay = 0.0F;
  bool nesterov = false;
  /// Enable LARS layer-wise adaptive scaling with this trust coefficient
  /// (0 disables LARS).
  float lars_trust = 0.0F;
  float lars_eps = 1e-9F;
};

class Sgd {
 public:
  Sgd(Model& model, SgdConfig config);

  /// Apply one update using the gradients currently stored in the model.
  /// Gradients are NOT cleared (callers own zero_grad()).
  void step();

  float lr() const { return config_.lr; }
  void set_lr(float lr) { config_.lr = lr; }
  const SgdConfig& config() const { return config_; }

  /// Flatten / restore momentum buffers (for checkpoints). Ordering
  /// follows the model's parameter order.
  [[nodiscard]] std::vector<float> state() const;
  void load_state(const std::vector<float>& s);

 private:
  Model* model_;
  SgdConfig config_;
  std::vector<Tensor> velocity_;
};

/// Learning-rate schedule: lr multiplier as a function of epoch (fractional
/// epochs allowed for warmup granularity).
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Returns the absolute learning rate at this (fractional) epoch.
  [[nodiscard]] virtual float lr_at(double epoch) const = 0;
};

/// Constant learning rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  [[nodiscard]] float lr_at(double) const override { return lr_; }

 private:
  float lr_;
};

/// Step decay: multiply by `gamma` at each milestone epoch, with optional
/// linear warmup from `warmup_start_factor * base_lr` over the first
/// `warmup_epochs` (the Goyal et al. gradual-warmup recipe).
class MultiStepLr : public LrSchedule {
 public:
  MultiStepLr(float base_lr, std::vector<double> milestones, float gamma,
              double warmup_epochs = 0.0, float warmup_start_factor = 0.1F);
  [[nodiscard]] float lr_at(double epoch) const override;

 private:
  float base_lr_;
  std::vector<double> milestones_;
  float gamma_;
  double warmup_epochs_;
  float warmup_start_factor_;
};

/// Cosine annealing to zero over `total_epochs` with linear warmup.
class CosineLr : public LrSchedule {
 public:
  CosineLr(float base_lr, double total_epochs, double warmup_epochs = 0.0);
  [[nodiscard]] float lr_at(double epoch) const override;

 private:
  float base_lr_;
  double total_epochs_;
  double warmup_epochs_;
};

}  // namespace dshuf::nn
