// Softmax cross-entropy loss with integrated, numerically stable backward.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace dshuf::nn {

/// Combined softmax + cross-entropy. forward() returns the mean loss over
/// the batch; backward() returns dLoss/dLogits for that same batch (mean
/// reduction, i.e. already divided by the batch size).
class SoftmaxCrossEntropy {
 public:
  /// logits: [N, C]; labels: N class indices < C.
  float forward(const Tensor& logits, const std::vector<std::uint32_t>& labels);

  /// Gradient of the mean loss w.r.t. the logits passed to the last forward.
  [[nodiscard]] Tensor backward() const;

  /// Allocation-free variant of backward(): computes into a member tensor
  /// whose capacity is reused. The reference stays valid until the next
  /// grad() call; the training hot path uses this.
  [[nodiscard]] const Tensor& grad();

  /// Softmax probabilities from the last forward ([N, C]).
  [[nodiscard]] const Tensor& probs() const { return probs_; }

  /// Per-sample losses from the last forward (length N). Used by
  /// importance-sampling policies that score individual samples.
  [[nodiscard]] const std::vector<float>& per_sample_losses() const {
    return sample_losses_;
  }

 private:
  Tensor probs_;
  Tensor grad_;
  std::vector<std::uint32_t> labels_;
  std::vector<float> sample_losses_;
};

}  // namespace dshuf::nn
