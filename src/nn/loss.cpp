#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dshuf::nn {

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<std::uint32_t>& labels) {
  DSHUF_CHECK_EQ(logits.rows(), labels.size(),
                 "labels must match logits batch size");
  const std::size_t N = logits.rows();
  const std::size_t C = logits.cols();
  probs_.resize2(N, C);
  labels_.assign(labels.begin(), labels.end());
  sample_losses_.assign(N, 0.0F);
  double total = 0.0;
  for (std::size_t i = 0; i < N; ++i) {
    DSHUF_CHECK_LT(labels[i], C, "label out of class range");
    const float* row = logits.data() + i * C;
    float* prow = probs_.data() + i * C;
    const float mx = *std::max_element(row, row + C);
    double denom = 0.0;
    for (std::size_t j = 0; j < C; ++j) {
      const double e = std::exp(static_cast<double>(row[j] - mx));
      prow[j] = static_cast<float>(e);
      denom += e;
    }
    const auto inv = static_cast<float>(1.0 / denom);
    for (std::size_t j = 0; j < C; ++j) prow[j] *= inv;
    // -log softmax of the true class, computed from the stabilised terms.
    const double logp =
        static_cast<double>(row[labels[i]] - mx) - std::log(denom);
    sample_losses_[i] = static_cast<float>(-logp);
    total -= logp;
  }
  return static_cast<float>(total / static_cast<double>(N));
}

Tensor SoftmaxCrossEntropy::backward() const {
  DSHUF_CHECK(!probs_.empty(), "backward() before forward()");
  const std::size_t N = probs_.rows();
  const std::size_t C = probs_.cols();
  Tensor grad = probs_;
  const auto inv_n = 1.0F / static_cast<float>(N);
  for (std::size_t i = 0; i < N; ++i) {
    float* row = grad.data() + i * C;
    row[labels_[i]] -= 1.0F;
    for (std::size_t j = 0; j < C; ++j) row[j] *= inv_n;
  }
  return grad;
}

const Tensor& SoftmaxCrossEntropy::grad() {
  DSHUF_CHECK(!probs_.empty(), "grad() before forward()");
  copy_into(probs_, grad_);
  const std::size_t N = grad_.rows();
  const std::size_t C = grad_.cols();
  const auto inv_n = 1.0F / static_cast<float>(N);
  for (std::size_t i = 0; i < N; ++i) {
    float* row = grad_.data() + i * C;
    row[labels_[i]] -= 1.0F;
    for (std::size_t j = 0; j < C; ++j) row[j] *= inv_n;
  }
  return grad_;
}

}  // namespace dshuf::nn
