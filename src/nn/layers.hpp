// Basic layers: Linear, ReLU, Tanh, Dropout.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace dshuf::nn {

/// Fully connected layer: y = x W + b, W is [in, out] row-major.
class Linear : public Layer {
 public:
  /// He-style initialisation: W ~ N(0, sqrt(2/in)), b = 0.
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

  void forward_into(const Tensor& x, Tensor& y, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return "Linear"; }

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Param weight_;
  Param bias_;
  // Input of the last forward, by reference (see the Layer lifetime
  // contract) — no per-iteration deep copy.
  const Tensor* cached_in_ = nullptr;
};

/// Rectified linear unit.
class ReLU : public Layer {
 public:
  void forward_into(const Tensor& x, Tensor& y, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  const Tensor* cached_in_ = nullptr;
};

/// Hyperbolic tangent activation.
class Tanh : public Layer {
 public:
  void forward_into(const Tensor& x, Tensor& y, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  [[nodiscard]] std::string name() const override { return "Tanh"; }
};

/// Inverted dropout: scales kept activations by 1/(1-p) during training,
/// identity at eval.
class Dropout : public Layer {
 public:
  /// `rng` must outlive the layer.
  Dropout(double p, Rng& rng);

  void forward_into(const Tensor& x, Tensor& y, bool training) override;
  void backward_into(const Tensor& grad_out, Tensor& grad_in) override;
  [[nodiscard]] std::string name() const override { return "Dropout"; }

 private:
  double p_;
  Rng* rng_;
  std::vector<float> mask_;
  bool last_training_ = false;
};

}  // namespace dshuf::nn
