// Basic layers: Linear, ReLU, Tanh, Dropout.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace dshuf::nn {

/// Fully connected layer: y = x W + b, W is [in, out] row-major.
class Linear : public Layer {
 public:
  /// He-style initialisation: W ~ N(0, sqrt(2/in)), b = 0.
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return "Linear"; }

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
};

/// Rectified linear unit.
class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

/// Hyperbolic tangent activation.
class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

/// Inverted dropout: scales kept activations by 1/(1-p) during training,
/// identity at eval.
class Dropout : public Layer {
 public:
  /// `rng` must outlive the layer.
  Dropout(double p, Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Dropout"; }

 private:
  double p_;
  Rng* rng_;
  std::vector<float> mask_;
  bool last_training_ = false;
};

}  // namespace dshuf::nn
