// Training checkpoints.
//
// Versioned binary format capturing everything training depends on:
// model parameters, non-trainable buffers (BatchNorm running statistics),
// optimiser momentum, and the epoch counter. Because every random draw in
// dshuf is a pure function of (seed, epoch, worker), restoring a
// checkpoint and continuing yields BIT-IDENTICAL training to an
// uninterrupted run — a property the test suite asserts.
//
// Layout (little-endian):
//   magic   "DSHUFCKP"           8 bytes
//   version u32                  currently 1
//   epoch   u64
//   3 x (u64 count, count x f32) model / buffers / optimizer
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dshuf::nn {

class Model;
class Sgd;

struct Checkpoint {
  std::uint64_t epoch = 0;
  std::vector<float> model_state;
  std::vector<float> buffer_state;
  std::vector<float> optimizer_state;
};

/// Capture the full training state.
Checkpoint make_checkpoint(Model& model, const Sgd& optimizer,
                           std::uint64_t epoch);

/// Restore into an architecturally identical model/optimizer pair.
void restore_checkpoint(const Checkpoint& ckpt, Model& model, Sgd& optimizer);

/// Write to / read from disk. Throws CheckError on I/O failure, bad magic,
/// unsupported version, or truncation.
void save_checkpoint(const std::string& path, const Checkpoint& ckpt);
Checkpoint load_checkpoint(const std::string& path);

}  // namespace dshuf::nn
