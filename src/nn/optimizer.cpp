#include "nn/optimizer.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dshuf::nn {

Sgd::Sgd(Model& model, SgdConfig config) : model_(&model), config_(config) {
  for (Param* p : model_->param_refs()) {
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::step() {
  const auto& params = model_->param_refs();
  DSHUF_CHECK_EQ(params.size(), velocity_.size(),
                 "model parameter set changed after optimiser construction");
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Param& p = *params[pi];
    Tensor& v = velocity_[pi];
    const float wd = p.apply_weight_decay ? config_.weight_decay : 0.0F;

    // Effective gradient g = grad + wd * w.
    // LARS: scale lr for this parameter tensor by
    //   trust * ||w|| / (||g|| + eps), clamped to a sane range.
    float local_lr = config_.lr;
    if (config_.lars_trust > 0.0F) {
      double wn = 0.0;
      double gn = 0.0;
      const float* w = p.value.data();
      const float* g = p.grad.data();
      for (std::size_t i = 0; i < p.value.size(); ++i) {
        wn += static_cast<double>(w[i]) * w[i];
        const double ge = static_cast<double>(g[i]) + wd * w[i];
        gn += ge * ge;
      }
      wn = std::sqrt(wn);
      gn = std::sqrt(gn);
      if (wn > 0.0 && gn > 0.0) {
        local_lr = config_.lr * config_.lars_trust *
                   static_cast<float>(wn / (gn + config_.lars_eps));
      }
    }

    float* w = p.value.data();
    const float* g = p.grad.data();
    float* vel = v.data();
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const float ge = g[i] + wd * w[i];
      vel[i] = config_.momentum * vel[i] + ge;
      const float update =
          config_.nesterov ? config_.momentum * vel[i] + ge : vel[i];
      w[i] -= local_lr * update;
    }
  }
}

std::vector<float> Sgd::state() const {
  std::vector<float> s;
  for (const Tensor& v : velocity_) {
    s.insert(s.end(), v.vec().begin(), v.vec().end());
  }
  return s;
}

void Sgd::load_state(const std::vector<float>& s) {
  std::size_t off = 0;
  for (Tensor& v : velocity_) {
    DSHUF_CHECK_LE(off + v.size(), s.size(),
                   "optimizer state vector too small");
    std::copy(s.begin() + static_cast<std::ptrdiff_t>(off),
              s.begin() + static_cast<std::ptrdiff_t>(off + v.size()),
              v.vec().begin());
    off += v.size();
  }
  DSHUF_CHECK_EQ(off, s.size(), "optimizer state vector size mismatch");
}

MultiStepLr::MultiStepLr(float base_lr, std::vector<double> milestones,
                         float gamma, double warmup_epochs,
                         float warmup_start_factor)
    : base_lr_(base_lr),
      milestones_(std::move(milestones)),
      gamma_(gamma),
      warmup_epochs_(warmup_epochs),
      warmup_start_factor_(warmup_start_factor) {}

float MultiStepLr::lr_at(double epoch) const {
  if (warmup_epochs_ > 0.0 && epoch < warmup_epochs_) {
    const double t = epoch / warmup_epochs_;
    return base_lr_ *
           (warmup_start_factor_ +
            static_cast<float>(t) * (1.0F - warmup_start_factor_));
  }
  float lr = base_lr_;
  for (double m : milestones_) {
    if (epoch >= m) lr *= gamma_;
  }
  return lr;
}

CosineLr::CosineLr(float base_lr, double total_epochs, double warmup_epochs)
    : base_lr_(base_lr),
      total_epochs_(total_epochs),
      warmup_epochs_(warmup_epochs) {
  DSHUF_CHECK_GT(total_epochs, 0.0, "cosine schedule needs a positive span");
}

float CosineLr::lr_at(double epoch) const {
  if (warmup_epochs_ > 0.0 && epoch < warmup_epochs_) {
    return base_lr_ * static_cast<float>(epoch / warmup_epochs_ + 1e-3);
  }
  const double t =
      std::min(1.0, (epoch - warmup_epochs_) /
                        std::max(1e-9, total_epochs_ - warmup_epochs_));
  return base_lr_ * static_cast<float>(0.5 * (1.0 + std::cos(M_PI * t)));
}

}  // namespace dshuf::nn
