// Layer abstraction for the training substrate.
//
// Layers own their parameters (value + gradient). backward() must be called
// immediately after the forward() whose activations it differentiates
// (caches are single-buffered). Gradients ACCUMULATE across backward calls
// until zero_grad() — this is what lets the simulator run M virtual
// workers' backward passes against one shared model and end up with the
// summed (then averaged) synchronous-SGD gradient.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace dshuf::nn {

/// A trainable parameter: value and accumulated gradient, plus a flag for
/// weight-decay exclusion (biases and norm scales are conventionally
/// excluded, as in the paper's reference training regimes).
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  bool apply_weight_decay = true;

  Param(std::string n, Tensor v, bool decay = true)
      : name(std::move(n)),
        value(std::move(v)),
        grad(value.shape()),
        apply_weight_decay(decay) {}
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. `training` toggles batch-stat collection / dropout.
  virtual Tensor forward(const Tensor& x, bool training) = 0;

  /// Backward pass given dLoss/dOutput; returns dLoss/dInput and
  /// accumulates parameter gradients.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Parameters of this layer (possibly empty).
  virtual std::vector<Param*> params() { return {}; }

  /// Non-trainable state updated during training (e.g. BatchNorm running
  /// statistics). Included in checkpoints; excluded from the optimiser.
  virtual std::vector<Tensor*> buffers() { return {}; }

  /// Layer type name for diagnostics.
  [[nodiscard]] virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace dshuf::nn
