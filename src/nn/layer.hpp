// Layer abstraction for the training substrate.
//
// Layers own their parameters (value + gradient). backward_into() must be
// called immediately after the forward_into() whose activations it
// differentiates (caches are single-buffered, and layers may cache the
// input by reference — the input tensor must stay alive and unmodified
// until backward completes; Model guarantees this by staging activations
// in its workspace). Gradients ACCUMULATE across backward calls until
// zero_grad() — this is what lets the simulator run M virtual workers'
// backward passes against one shared model and end up with the summed
// (then averaged) synchronous-SGD gradient.
//
// The _into entry points write results into caller-provided tensors whose
// capacity is reused across iterations, so a steady-state training loop
// does no heap allocation (see tensor/workspace.hpp). The by-value
// forward()/backward() wrappers remain for tests and one-off use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "tensor/workspace.hpp"

namespace dshuf::nn {

/// A trainable parameter: value and accumulated gradient, plus a flag for
/// weight-decay exclusion (biases and norm scales are conventionally
/// excluded, as in the paper's reference training regimes).
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  bool apply_weight_decay = true;

  Param(std::string n, Tensor v, bool decay = true)
      : name(std::move(n)),
        value(std::move(v)),
        grad(value.shape()),
        apply_weight_decay(decay) {}
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass into y (resized in place, capacity reused; y must not
  /// alias x). `training` toggles batch-stat collection / dropout.
  virtual void forward_into(const Tensor& x, Tensor& y, bool training) = 0;

  /// Backward pass given dLoss/dOutput: writes dLoss/dInput into grad_in
  /// (resized in place; must not alias grad_out) and accumulates
  /// parameter gradients.
  virtual void backward_into(const Tensor& grad_out, Tensor& grad_in) = 0;

  /// Convenience by-value wrappers over the _into core (these allocate).
  Tensor forward(const Tensor& x, bool training) {
    Tensor y;
    forward_into(x, y, training);
    return y;
  }
  Tensor backward(const Tensor& grad_out) {
    Tensor grad_in;
    backward_into(grad_out, grad_in);
    return grad_in;
  }

  /// Parameters of this layer (possibly empty).
  virtual std::vector<Param*> params() { return {}; }

  /// Non-trainable state updated during training (e.g. BatchNorm running
  /// statistics). Included in checkpoints; excluded from the optimiser.
  virtual std::vector<Tensor*> buffers() { return {}; }

  /// Layer type name for diagnostics.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Attach a shared scratch arena (Model does this on add()); nullptr
  /// reverts to the layer's private arena.
  void set_workspace(Workspace* ws) { ws_ = ws; }

 protected:
  /// This layer's scratch slot `id` in the attached (or private)
  /// workspace. Same id => same tensor every call; capacity persists.
  Tensor& scratch(int id) {
    return (ws_ != nullptr ? *ws_ : local_ws_).slot(this, id);
  }

 private:
  Workspace* ws_ = nullptr;
  Workspace local_ws_;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace dshuf::nn
