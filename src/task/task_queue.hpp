// Lock-free queues for the work-stealing task runtime.
//
// Two structures, matching the classic work-stealing architecture:
//
//   * ChaseLevDeque<T> — each worker's private deque (Chase & Lev,
//     "Dynamic Circular Work-Stealing Deque", SPAA'05). The OWNER pushes
//     and pops at the bottom (LIFO, cache-hot); THIEVES steal from the top
//     (FIFO, oldest first). Owner operations are wait-free except when the
//     array grows; steal is lock-free.
//   * BoundedMpmcQueue<T> — the scheduler's injection queue for tasks
//     submitted by threads that are not workers (Vyukov's bounded MPMC
//     ring: per-cell sequence numbers arbitrate producers and consumers
//     without a lock).
//
// Memory-order notes. The textbook Chase–Lev deque uses standalone
// seq_cst fences (Lê et al., "Correct and Efficient Work-Stealing for
// Weak Memory Models", PPoPP'13). ThreadSanitizer does not model
// standalone fences, so this implementation uses seq_cst operations on
// top_/bottom_ directly at the two places the fence would go (owner pop's
// bottom publication + top read, thief's top/bottom read pair). That is
// strictly stronger than the fence formulation — the proofs carry over —
// and keeps the `concurrent`-labelled stress tests meaningful under TSan.
// Cells are relaxed atomics: the value handoff is ordered by the
// surrounding top/bottom operations, and making the slots atomic keeps
// the benign owner-store/thief-load overlap out of TSan's race reports.
//
// Both queues hold trivially-copyable values (the scheduler stores Task*).
// Retired deque arrays are kept alive until the deque is destroyed, so a
// thief holding a stale array pointer always reads valid (and, per the
// algorithm, still-correct) memory.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "util/error.hpp"
#include "util/noalloc.hpp"

namespace dshuf::task {

namespace detail {
/// Smallest power of two >= n (and >= floor_pow2).
inline std::size_t pow2_at_least(std::size_t n, std::size_t floor_pow2) {
  std::size_t cap = floor_pow2;
  while (cap < n) cap <<= 1U;
  return cap;
}
}  // namespace detail

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "deque slots hand values across threads by plain copy");

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64) {
    DSHUF_CHECK_GT(initial_capacity, 0U, "deque capacity must be positive");
    auto arr =
        std::make_unique<Array>(detail::pow2_at_least(initial_capacity, 2));
    array_.store(arr.get(), std::memory_order_relaxed);
    arrays_.push_back(std::move(arr));
  }
  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// OWNER ONLY: push one item at the bottom. Grows (amortised O(1))
  /// when full — the only allocating path.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(a->cap)) a = grow(t, b);
    a->put(b, item);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// OWNER ONLY: pop the most recently pushed item (LIFO).
  DSHUF_NOALLOC std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t <= b) {
      T item = a->get(b);
      if (t == b) {
        // Last element: race the thieves for it via top.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          bottom_.store(b + 1, std::memory_order_relaxed);
          return std::nullopt;  // a thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
      return item;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return std::nullopt;  // already empty
  }

  /// ANY THREAD: steal the oldest item (FIFO). nullopt when the deque
  /// looks empty OR the steal lost a race — callers treat both as "try
  /// elsewhere".
  DSHUF_NOALLOC std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t < b) {
      Array* a = array_.load(std::memory_order_acquire);
      T item = a->get(t);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return std::nullopt;
      }
      return item;
    }
    return std::nullopt;
  }

  /// Racy size estimate — scheduling hint only.
  [[nodiscard]] std::size_t size_hint() const {
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  struct Array {
    explicit Array(std::size_t c)
        : cap(c), mask(c - 1),
          cells(std::make_unique<std::atomic<T>[]>(c)) {}
    std::size_t cap;
    std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> cells;

    [[nodiscard]] T get(std::int64_t i) const {
      return cells[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) {
      cells[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
  };

  /// OWNER ONLY: double the array, copying live entries [t, b). The old
  /// array is retired, not freed — stale thief reads stay valid.
  Array* grow(std::int64_t t, std::int64_t b) {
    Array* old = array_.load(std::memory_order_relaxed);
    auto bigger = std::make_unique<Array>(old->cap * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    Array* raw = bigger.get();
    array_.store(raw, std::memory_order_release);
    arrays_.push_back(std::move(bigger));
    return raw;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::atomic<Array*> array_{nullptr};
  std::vector<std::unique_ptr<Array>> arrays_;  // owner-only; retired + live
};

template <typename T>
class BoundedMpmcQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "queue slots hand values across threads by plain copy");

 public:
  explicit BoundedMpmcQueue(std::size_t capacity) {
    DSHUF_CHECK_GT(capacity, 0U, "queue capacity must be positive");
    const std::size_t cap = detail::pow2_at_least(capacity, 2);
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }
  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// ANY THREAD: enqueue; false when full.
  DSHUF_NOALLOC bool try_push(T item) {
    Cell* cell = nullptr;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::int64_t>(seq) -
                       static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // the cell still holds an unconsumed older item
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = item;
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// ANY THREAD: dequeue; nullopt when empty.
  DSHUF_NOALLOC std::optional<T> try_pop() {
    Cell* cell = nullptr;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::int64_t>(seq) -
                       static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return std::nullopt;  // no producer has filled this cell yet
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    T item = cell->value;
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return item;
  }

  /// Racy emptiness estimate — scheduling hint only.
  [[nodiscard]] bool empty_hint() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace dshuf::task
