#include "task/core_set.hpp"

#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dshuf::task {

namespace {

std::string_view strip(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

int parse_core_id(std::string_view tok) {
  DSHUF_CHECK(!tok.empty(), "DSHUF_CORES: empty core id");
  int v = 0;
  for (const char c : tok) {
    DSHUF_CHECK(c >= '0' && c <= '9',
                "DSHUF_CORES: bad core id '" << std::string(tok) << "'");
    v = v * 10 + (c - '0');
    DSHUF_CHECK_LT(v, 1 << 20, "DSHUF_CORES: core id out of range");
  }
  return v;
}

}  // namespace

CoreSet CoreSet::parse(std::string_view spec) {
  CoreSet set;
  spec = strip(spec);
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view tok = strip(spec.substr(0, comma));
    spec = comma == std::string_view::npos ? std::string_view{}
                                          : spec.substr(comma + 1);
    if (tok.empty()) continue;
    const std::size_t dash = tok.find('-');
    if (dash == std::string_view::npos) {
      set.cores_.push_back(parse_core_id(tok));
    } else {
      const int lo = parse_core_id(strip(tok.substr(0, dash)));
      const int hi = parse_core_id(strip(tok.substr(dash + 1)));
      DSHUF_CHECK_LE(lo, hi, "DSHUF_CORES: descending range "
                                 << lo << "-" << hi);
      for (int c = lo; c <= hi; ++c) set.cores_.push_back(c);
    }
  }
  return set;
}

CoreSet CoreSet::from_env() {
  const char* spec = std::getenv("DSHUF_CORES");
  return spec == nullptr ? CoreSet{} : parse(spec);
}

int CoreSet::core_for(std::size_t worker_index) const {
  if (cores_.empty()) return -1;
  return cores_[worker_index % cores_.size()];
}

std::string CoreSet::describe() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (i != 0) oss << ",";
    // Collapse a run of consecutive ids into "lo-hi".
    std::size_t j = i;
    while (j + 1 < cores_.size() && cores_[j + 1] == cores_[j] + 1) ++j;
    if (j > i + 1) {
      oss << cores_[i] << "-" << cores_[j];
      i = j;
    } else {
      oss << cores_[i];
    }
  }
  return oss.str();
}

bool pin_current_thread(int cpu) {
  if (cpu < 0) return false;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(static_cast<unsigned>(cpu), &mask);
  return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
#else
  return false;
#endif
}

}  // namespace dshuf::task
