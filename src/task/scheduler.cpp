#include "task/scheduler.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/noalloc.hpp"

namespace dshuf::task {

namespace {

/// Which scheduler (if any) the calling thread is a worker of.
struct WorkerIdentity {
  const Scheduler* scheduler = nullptr;
  std::size_t index = SIZE_MAX;
};
thread_local WorkerIdentity t_worker;

}  // namespace

Scheduler::Scheduler(const Config& config)
    : workers_(config.workers),
      injection_(config.injection_capacity),
      cores_(config.cores) {
  DSHUF_CHECK_GT(workers_, 0U, "Scheduler needs at least one worker");
  // Two-phase start: every deque must exist before any thread can steal.
  const std::size_t threads = workers_ - 1;
  states_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    states_.push_back(std::make_unique<WorkerState>());
  }
  for (std::size_t i = 0; i < threads; ++i) {
    states_[i]->thread = std::thread([this, i] { worker_main(i); });
  }
  DSHUF_GAUGE("task.workers").set(static_cast<std::int64_t>(workers_));
}

Scheduler::~Scheduler() {
  {
    const std::lock_guard<RankedMutex> lk(mu_);
    stopping_ = true;
    ++work_version_;
  }
  cv_.notify_all();
  for (auto& s : states_) {
    if (s->thread.joinable()) s->thread.join();
  }
}

std::size_t Scheduler::this_worker_index() const {
  return t_worker.scheduler == this ? t_worker.index : SIZE_MAX;
}

void Scheduler::notify_all_workers() {
  {
    const std::lock_guard<RankedMutex> lk(mu_);
    ++work_version_;
  }
  cv_.notify_all();
}

void Scheduler::submit(Task* t, TaskGroup& group) {
  t->group = &group;
  group.pending_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t self = this_worker_index();
  if (self != SIZE_MAX) {
    states_[self]->deque.push(t);
  } else {
    // External thread: injection queue. On the rare full queue, make
    // progress by running one injected task inline, then retry.
    while (!injection_.try_push(t)) {
      if (const auto other = injection_.try_pop()) run_task(*other);
    }
    DSHUF_COUNTER("task.injected").add(1);
  }
  DSHUF_COUNTER("task.submitted").add(1);
  notify_all_workers();
}

DSHUF_NOALLOC void Scheduler::run_task(Task* t) {
  // The task object may be owned by a waiter whose group drains the
  // moment we decrement, so read everything we need first.
  TaskGroup* group = t->group;
  try {
    t->fn(t);
  } catch (...) {
    // Never let a throw escape here: on a pool worker it would
    // std::terminate the process, and skipping the decrement below would
    // strand every waiter on this group in a spin. Park the exception on
    // the group; wait() rethrows it on the waiter's thread.
    group->record_error(std::current_exception());
    DSHUF_COUNTER("task.failed").add(1);
  }
  DSHUF_COUNTER("task.executed").add(1);
  // release: the waiter's done() acquire-load must see the task's writes
  // (and any recorded error).
  group->pending_.fetch_sub(1, std::memory_order_release);
}

DSHUF_NOALLOC Task* Scheduler::try_acquire(std::size_t self) {
  if (self != SIZE_MAX) {
    if (auto t = states_[self]->deque.pop()) return *t;
  }
  if (auto t = injection_.try_pop()) return *t;
  const std::size_t n = states_.size();
  if (n != 0) {
    const std::size_t start = self == SIZE_MAX ? 0 : self + 1;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t victim = (start + i) % n;
      if (victim == self) continue;
      if (auto t = states_[victim]->deque.steal()) {
        DSHUF_COUNTER("task.steals").add(1);
        return *t;
      }
    }
  }
  return nullptr;
}

void Scheduler::wait(TaskGroup& group) {
  const std::size_t self = this_worker_index();
  int idle_spins = 0;
  while (!group.done()) {
    if (Task* t = try_acquire(self)) {
      run_task(t);
      idle_spins = 0;
      continue;
    }
    // Nothing to help with: another thread is finishing our tasks. Spin
    // briefly, then yield — on a single hardware core the yield is what
    // lets the finishing thread run at all.
    if (++idle_spins > 64) {
      std::this_thread::yield();
    }
  }
  group.rethrow_if_error();
}

void Scheduler::worker_main(std::size_t index) {
  t_worker = WorkerIdentity{this, index};
  pin_current_thread(cores_.core_for(index));
  // Deterministic trace lane per worker (index is stable for the
  // scheduler's lifetime), named so Perfetto and dshuf_trace's per-worker
  // self-time rows show "task.worker.N" instead of a bare auto tid.
  obs::Tracer::set_thread_track(obs::Tracer::kWorkerTrackBase +
                                static_cast<int>(index));
  obs::Tracer::set_thread_name("task.worker." + std::to_string(index));
  for (;;) {
    if (Task* t = try_acquire(index)) {
      run_task(t);
      continue;
    }
    // Going idle: drain this worker's trace buffer first. Pool workers
    // outlive bench exports, so spans parked here would otherwise never
    // reach write_chrome_trace. Done before taking mu_ (flush locks the
    // obs mutex).
    obs::Tracer::flush_thread();
    // Dry scan: park until the work version moves. Re-scan after reading
    // the version so a submit landing between the scan and the wait is
    // never missed (its notify bumps the version we compare against).
    std::unique_lock<RankedMutex> lk(mu_);
    if (stopping_) return;
    const std::uint64_t seen = work_version_;
    lk.unlock();
    if (Task* t = try_acquire(index)) {
      run_task(t);
      continue;
    }
    lk.lock();
    cv_.wait(lk, [&] { return stopping_ || work_version_ != seen; });
    if (stopping_) return;
  }
}

void Scheduler::parallel_for_impl(std::size_t begin, std::size_t end,
                                  std::size_t grain, void* ctx,
                                  detail::ChunkFn invoke) {
  const std::size_t total = end > begin ? end - begin : 0;
  if (total == 0) return;
  if (grain == 0) grain = 1;
  constexpr std::size_t kMaxChunks = 64;
  const std::size_t chunks =
      std::min({workers_, kMaxChunks, (total + grain - 1) / grain});
  if (chunks <= 1) {
    invoke(ctx, begin, end);
    return;
  }

  DSHUF_COUNTER("task.parallel_for").add(1);
  obs::SpanGuard span("task.parallel_for");
  span.attr("chunks", std::to_string(chunks));
  span.attr("items", std::to_string(total));

  struct ChunkTask : Task {
    void* ctx = nullptr;
    detail::ChunkFn invoke = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  std::array<ChunkTask, kMaxChunks> tasks;
  TaskGroup group;
  const std::size_t base = total / chunks;
  const std::size_t extra = total % chunks;
  std::size_t cursor = begin;
  for (std::size_t i = 0; i < chunks; ++i) {
    ChunkTask& ct = tasks[i];
    ct.ctx = ctx;
    ct.invoke = invoke;
    ct.begin = cursor;
    cursor += base + (i < extra ? 1 : 0);
    ct.end = cursor;
    ct.fn = [](Task* t) {
      auto* c = static_cast<ChunkTask*>(t);
      c->invoke(c->ctx, c->begin, c->end);
    };
    submit(&ct, group);
  }
  DSHUF_CHECK_EQ(cursor, end, "parallel_for chunking lost iterations");
  wait(group);
}

namespace {

std::size_t clamp_worker_count(std::size_t w) {
  return std::min<std::size_t>(std::max<std::size_t>(w, 1), 256);
}

/// Holder for the process-wide scheduler. Built eagerly from
/// DSHUF_WORKERS at first use; destroyed (joining its threads) at exit.
struct GlobalSched {
  std::unique_ptr<Scheduler> sched;
  std::size_t workers = 1;

  GlobalSched() {
    std::size_t w = 1;
    if (const char* env = std::getenv("DSHUF_WORKERS")) {
      char* endp = nullptr;
      const unsigned long v = std::strtoul(env, &endp, 10);
      if (endp != env && v >= 1) w = static_cast<std::size_t>(v);
    }
    rebuild(w);
  }

  void rebuild(std::size_t w) {
    workers = clamp_worker_count(w);
    sched.reset();  // join old workers before spawning new ones
    if (workers > 1) {
      sched = std::make_unique<Scheduler>(Scheduler::Config{
          .workers = workers,
          .cores = CoreSet::from_env(),
          .injection_capacity = 1024,
      });
    }
    DSHUF_GAUGE("task.workers").set(static_cast<std::int64_t>(workers));
  }
};

GlobalSched& global_state() {
  static GlobalSched g;
  return g;
}

}  // namespace

Scheduler* global_scheduler() { return global_state().sched.get(); }

std::size_t global_workers() { return global_state().workers; }

void set_global_workers(std::size_t workers) {
  global_state().rebuild(workers);
}

}  // namespace dshuf::task
