// Work-stealing task scheduler (ROADMAP item 1: tasking layer with
// compute/comm overlap).
//
// Model. A Scheduler owns `workers - 1` std::threads (the submitting
// thread is worker 0 in spirit: it HELPS while waiting, so `workers = 4`
// means four threads execute tasks, not five). Each worker thread owns a
// Chase–Lev deque; tasks submitted from a worker go to its own deque
// (LIFO, cache-hot), tasks submitted from any other thread go through a
// bounded MPMC injection queue. Idle workers pop their deque, then the
// injection queue, then steal round-robin from the other deques; when
// everything is dry they park on a condition variable.
//
// Tasks are plain structs (`Task` base + a function pointer), so the
// steady state allocates nothing: callers stack-allocate `ClosureTask`s
// or arrays of them, submit, and `wait()` on the group — the submitter
// OWNS task lifetime and must keep tasks alive until wait() returns.
// wait() never blocks the caller idly: it runs tasks (its own, injected,
// or stolen) until the group drains.
//
// Lock order. The only lock is the park/wake mutex at
// LockRank::kTaskScheduler — the LOWEST project rank. It is taken with
// nothing held (submit's notify, a worker's park) and is never held while
// a task body runs; consequently submitting a task while holding any
// project lock trips the rank checker by design (a task body may itself
// take locks, so a submit-under-lock could invert the documented order).
//
// Determinism. The scheduler makes no ordering promises — callers that
// need bit-identical results must make every task's writes disjoint and
// every reduction's order schedule-independent (see DESIGN.md §11 for how
// the tensor kernels achieve this).
//
// Instrumentation: task.submitted / task.executed / task.steals /
// task.injected / task.parallel_for counters, a task.workers gauge, and a
// "task.parallel_for" span around each parallel loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "task/core_set.hpp"
#include "task/task_queue.hpp"
#include "util/error.hpp"
#include "util/ranked_mutex.hpp"

namespace dshuf::task {

class Scheduler;
class TaskGroup;

/// POD task base. `fn` is invoked with the task itself; derive and
/// downcast to carry state. The SUBMITTER owns the task object and must
/// keep it alive until the group it was submitted under has drained.
struct Task {
  void (*fn)(Task*) = nullptr;
  TaskGroup* group = nullptr;  // set by Scheduler::submit
};

/// Joins a batch of tasks: submit N tasks under one group, then
/// `scheduler.wait(group)`. Reusable after wait() returns.
///
/// A task body that throws does NOT wedge the group: run_task catches the
/// exception, records the FIRST one here (later ones are dropped, counted
/// under task.failed), and still decrements pending — so done() always
/// becomes true and wait() rethrows the stored exception in the WAITER's
/// context. A throw can never escape on a pool worker thread (which would
/// std::terminate the process) or strand sibling waiters mid-spin.
class TaskGroup {
 public:
  [[nodiscard]] bool done() const {
    return pending_.load(std::memory_order_acquire) == 0;
  }

  /// Rethrow the first exception a task under this group raised, if any,
  /// clearing it (so the group is reusable afterwards). Called by wait();
  /// only meaningful once done() is true.
  void rethrow_if_error() {
    if (has_error_.load(std::memory_order_acquire)) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      has_error_.store(false, std::memory_order_release);
      error_claimed_.store(false, std::memory_order_release);
      std::rethrow_exception(e);
    }
  }

 private:
  friend class Scheduler;

  /// First-wins error slot. The release decrement of pending_ in run_task
  /// publishes error_ to whoever observes done().
  void record_error(std::exception_ptr e) {
    if (!error_claimed_.exchange(true, std::memory_order_acq_rel)) {
      error_ = std::move(e);
      has_error_.store(true, std::memory_order_release);
    }
  }

  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> error_claimed_{false};
  std::atomic<bool> has_error_{false};
  std::exception_ptr error_;
};

/// Wraps a callable (typically a lambda) as a stack-allocatable Task.
/// The callable must stay valid until the group drains (it lives inside
/// this object, so: keep the ClosureTask alive).
template <typename F>
struct ClosureTask : Task {
  explicit ClosureTask(F f) : body(std::move(f)) {
    fn = [](Task* t) { static_cast<ClosureTask*>(t)->body(); };
  }
  F body;
};

namespace detail {
/// Type-erased chunk invoker for parallel_for (keeps the template thin).
using ChunkFn = void (*)(void* ctx, std::size_t begin, std::size_t end);
}  // namespace detail

class Scheduler {
 public:
  struct Config {
    std::size_t workers = 1;           ///< total executing threads (>= 1)
    CoreSet cores = CoreSet::from_env();  ///< pin targets; empty = unpinned
    std::size_t injection_capacity = 1024;
  };

  explicit Scheduler(const Config& config);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] std::size_t workers() const { return workers_; }

  /// Enqueue `t` under `group`. From a worker thread of THIS scheduler
  /// the task goes to that worker's deque; from any other thread it goes
  /// through the injection queue (spinning on the rare full queue by
  /// draining one task inline). Do not hold any project lock across this
  /// call (see lock-order note above).
  void submit(Task* t, TaskGroup& group);

  /// Run tasks (own deque / injected / stolen) until `group` drains.
  /// Callable from any thread, including concurrently from several
  /// threads on distinct groups; re-entrant from inside a task body.
  void wait(TaskGroup& group);

  /// Chunked parallel loop over [begin, end): splits into at most one
  /// chunk per worker (and at most 64), each >= grain iterations, and
  /// runs them under an internal group. `body(chunk_begin, chunk_end)`
  /// must write disjoint state per chunk. Runs inline when the range
  /// collapses to one chunk. Blocks until every chunk finished.
  template <typename F>
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    F&& body) {
    using Fn = std::remove_reference_t<F>;
    parallel_for_impl(
        begin, end, grain,
        const_cast<void*>(static_cast<const void*>(std::addressof(body))),
        [](void* ctx, std::size_t b, std::size_t e) {
          (*static_cast<Fn*>(ctx))(b, e);
        });
  }

  /// Worker index of the calling thread within this scheduler, or
  /// SIZE_MAX for external threads (they may submit + wait, not own a
  /// deque).
  [[nodiscard]] std::size_t this_worker_index() const;

 private:
  struct WorkerState {
    ChaseLevDeque<Task*> deque;
    std::thread thread;  // unset for slot 0 (the submitting thread helps)
  };

  void parallel_for_impl(std::size_t begin, std::size_t end,
                         std::size_t grain, void* ctx, detail::ChunkFn invoke);
  void worker_main(std::size_t index);
  void run_task(Task* t);
  /// One acquisition attempt: own deque (workers only), injection queue,
  /// then one full round-robin steal sweep. nullptr when everything is
  /// dry right now.
  Task* try_acquire(std::size_t self);
  void notify_all_workers();

  std::size_t workers_;
  BoundedMpmcQueue<Task*> injection_;
  std::vector<std::unique_ptr<WorkerState>> states_;
  CoreSet cores_;

  // Park/wake. Workers park when a full scan finds nothing; submit bumps
  // work_version_ under the mutex and notifies, so a version observed
  // before parking going stale means "rescan" (no lost wakeups).
  RankedMutex mu_{LockRank::kTaskScheduler, "task.scheduler"};
  std::condition_variable_any cv_;
  std::uint64_t work_version_ = 0;
  bool stopping_ = false;
};

/// The process-wide scheduler, or nullptr when DSHUF_WORKERS (default 1)
/// requests single-threaded execution — callers treat nullptr as "run
/// serially", which keeps the 1-worker configuration byte-identical to
/// the pre-tasking code path.
Scheduler* global_scheduler();

/// Worker count the global scheduler was built with (1 when nullptr).
std::size_t global_workers();

/// Rebuild the global scheduler with `workers` threads. NOT safe while
/// tasks are in flight on the old scheduler; intended for test setup and
/// bench arms. workers is clamped to [1, 256].
void set_global_workers(std::size_t workers);

/// RAII worker-count override (set_global_workers on enter + exit).
class ScopedTaskWorkers {
 public:
  explicit ScopedTaskWorkers(std::size_t workers)
      : previous_(global_workers()) {
    set_global_workers(workers);
  }
  ~ScopedTaskWorkers() { set_global_workers(previous_); }
  ScopedTaskWorkers(const ScopedTaskWorkers&) = delete;
  ScopedTaskWorkers& operator=(const ScopedTaskWorkers&) = delete;

 private:
  std::size_t previous_;
};

}  // namespace dshuf::task
