// Core-affinity description for the task runtime's workers.
//
// A CoreSet is an ordered list of CPU ids parsed from a spec like
// "0,2,4-7". Workers ask `core_for(worker_index)` for their pin target
// (round-robin over the listed cores) and call `pin_current_thread` at
// startup; an empty CoreSet means "no pinning" and every call is a no-op,
// which is also the graceful fallback on platforms without a thread
// affinity API. The default comes from the DSHUF_CORES environment
// variable so runs can be pinned without recompiling.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace dshuf::task {

class CoreSet {
 public:
  /// Empty set: no pinning.
  CoreSet() = default;

  /// Parse "0,2,4-7" (comma-separated ids and inclusive ranges).
  /// Whitespace around tokens is ignored; an empty spec yields the empty
  /// set. Malformed specs are a DSHUF_CHECK failure.
  static CoreSet parse(std::string_view spec);

  /// CoreSet::parse(getenv("DSHUF_CORES")), empty when unset.
  static CoreSet from_env();

  [[nodiscard]] bool empty() const { return cores_.empty(); }
  [[nodiscard]] std::size_t size() const { return cores_.size(); }
  [[nodiscard]] const std::vector<int>& cores() const { return cores_; }

  /// Pin target for the worker at `worker_index` (round-robin), -1 when
  /// the set is empty.
  [[nodiscard]] int core_for(std::size_t worker_index) const;

  /// "0,2,4-7"-style canonical rendering (ids in listed order).
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<int> cores_;
};

/// Pin the calling thread to `cpu`. Returns true on success; false when
/// pinning is unsupported on this platform, `cpu` is negative, or the
/// kernel rejected the mask (e.g. the cpu does not exist) — callers treat
/// failure as "run unpinned", never as an error.
bool pin_current_thread(int cpu);

}  // namespace dshuf::task
