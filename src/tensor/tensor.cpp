#include "tensor/tensor.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>

#include "obs/metrics.hpp"
#include "tensor/gemm_kernel.hpp"
#include "tensor/kernel_ref.hpp"

namespace dshuf {

std::size_t shape_numel(const std::vector<std::size_t>& shape) {
  if (shape.empty()) return 0;
  std::size_t n = 1;
  for (auto d : shape) n *= d;
  return n;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0F) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  DSHUF_CHECK_EQ(data_.size(), shape_numel(shape_),
                 "data size does not match shape " << shape_str());
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<std::size_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal()) * stddev;
  }
  return t;
}

void Tensor::reshape(std::vector<std::size_t> shape) {
  DSHUF_CHECK_EQ(shape_numel(shape), data_.size(),
                 "reshape must preserve element count");
  shape_ = std::move(shape);
}

void Tensor::resize1(std::size_t n) {
  shape_.assign({n});
  data_.resize(n);
}

void Tensor::resize2(std::size_t rows, std::size_t cols) {
  shape_.assign({rows, cols});
  data_.resize(rows * cols);
}

void Tensor::resize_like(const Tensor& other) {
  shape_.assign(other.shape_.begin(), other.shape_.end());
  data_.resize(other.data_.size());
}

void copy_into(const Tensor& src, Tensor& dst) {
  if (&src == &dst) return;
  dst.resize_like(src);
  const auto& sv = src.vec();
  std::copy(sv.begin(), sv.end(), dst.vec().begin());
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

void Tensor::axpy(float alpha, const Tensor& other) {
  DSHUF_CHECK_EQ(data_.size(), other.data_.size(),
                 "axpy requires matching sizes");
  const float* o = other.data_.data();
  float* d = data_.data();
  for (std::size_t i = 0; i < data_.size(); ++i) d[i] += alpha * o[i];
}

void Tensor::scale(float alpha) {
  for (auto& x : data_) x *= alpha;
}

float Tensor::sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return static_cast<float>(s);
}

float Tensor::l2_norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

float Tensor::max_abs() const {
  float m = 0.0F;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

std::string Tensor::shape_str() const {
  std::ostringstream oss;
  oss << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << shape_[i];
  }
  oss << ']';
  return oss.str();
}

namespace {

void check_matrix(const Tensor& t, const char* name) {
  DSHUF_CHECK_EQ(t.rank(), 2U, name << " must be a matrix");
}

// Acquire/release atomic (see the thread-model note in tensor.hpp): a
// reader that observes a flip also observes everything the flipping
// thread wrote before it. gemm_dispatch reads it exactly once per call,
// so one GEMM never straddles a concurrent flip.
std::atomic<KernelBackend> g_kernel_backend{KernelBackend::kBlocked};

/// Shared tail of the three gemm entry points: counts the call, then
/// routes to the blocked production kernel or the retained reference.
void gemm_dispatch(const float* a, const float* b, float* out, std::size_t m,
                   std::size_t n, std::size_t k, bool a_transposed,
                   bool b_transposed, bool accumulate) {
  DSHUF_COUNTER("tensor.gemm.calls").add(1);
  DSHUF_COUNTER("tensor.gemm.flops").add(2ULL * m * n * k);
  if (kernel_backend() == KernelBackend::kBlocked) {
    kernel::gemm_blocked(a, b, out, m, n, k, a_transposed, b_transposed,
                         accumulate);
  } else {
    kernel_ref::gemm_ref(a, b, out, m, n, k, a_transposed, b_transposed,
                         accumulate);
  }
}

}  // namespace

KernelBackend kernel_backend() {
  return g_kernel_backend.load(std::memory_order_acquire);
}

void set_kernel_backend(KernelBackend backend) {
  g_kernel_backend.store(backend, std::memory_order_release);
}

void gemm(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate) {
  check_matrix(a, "a");
  check_matrix(b, "b");
  check_matrix(out, "out");
  const std::size_t M = a.rows();
  const std::size_t K = a.cols();
  const std::size_t N = b.cols();
  DSHUF_CHECK_EQ(b.rows(), K, "gemm inner dimensions must match");
  DSHUF_CHECK_EQ(out.rows(), M, "gemm output rows mismatch");
  DSHUF_CHECK_EQ(out.cols(), N, "gemm output cols mismatch");
  gemm_dispatch(a.data(), b.data(), out.data(), M, N, K,
                /*a_transposed=*/false, /*b_transposed=*/false, accumulate);
}

void gemm_at_b(const Tensor& a, const Tensor& b, Tensor& out,
               bool accumulate) {
  check_matrix(a, "a");
  check_matrix(b, "b");
  check_matrix(out, "out");
  const std::size_t K = a.rows();  // shared (batch) dimension
  const std::size_t M = a.cols();
  const std::size_t N = b.cols();
  DSHUF_CHECK_EQ(b.rows(), K, "gemm_at_b batch dimensions must match");
  DSHUF_CHECK_EQ(out.rows(), M, "gemm_at_b output rows mismatch");
  DSHUF_CHECK_EQ(out.cols(), N, "gemm_at_b output cols mismatch");
  gemm_dispatch(a.data(), b.data(), out.data(), M, N, K,
                /*a_transposed=*/true, /*b_transposed=*/false, accumulate);
}

void gemm_a_bt(const Tensor& a, const Tensor& b, Tensor& out,
               bool accumulate) {
  check_matrix(a, "a");
  check_matrix(b, "b");
  check_matrix(out, "out");
  const std::size_t M = a.rows();
  const std::size_t K = a.cols();
  const std::size_t N = b.rows();  // b is NxK
  DSHUF_CHECK_EQ(b.cols(), K, "gemm_a_bt inner dimensions must match");
  DSHUF_CHECK_EQ(out.rows(), M, "gemm_a_bt output rows mismatch");
  DSHUF_CHECK_EQ(out.cols(), N, "gemm_a_bt output cols mismatch");
  gemm_dispatch(a.data(), b.data(), out.data(), M, N, K,
                /*a_transposed=*/false, /*b_transposed=*/true, accumulate);
}

std::vector<std::uint32_t> argmax_rows(const Tensor& m) {
  check_matrix(m, "m");
  std::vector<std::uint32_t> out(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* row = m.data() + i * m.cols();
    std::size_t best = 0;
    for (std::size_t j = 1; j < m.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = static_cast<std::uint32_t>(best);
  }
  return out;
}

}  // namespace dshuf
