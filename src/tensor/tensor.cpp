#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

namespace dshuf {

std::size_t shape_numel(const std::vector<std::size_t>& shape) {
  if (shape.empty()) return 0;
  std::size_t n = 1;
  for (auto d : shape) n *= d;
  return n;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0F) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  DSHUF_CHECK_EQ(data_.size(), shape_numel(shape_),
                 "data size does not match shape " << shape_str());
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<std::size_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal()) * stddev;
  }
  return t;
}

void Tensor::reshape(std::vector<std::size_t> shape) {
  DSHUF_CHECK_EQ(shape_numel(shape), data_.size(),
                 "reshape must preserve element count");
  shape_ = std::move(shape);
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

void Tensor::axpy(float alpha, const Tensor& other) {
  DSHUF_CHECK_EQ(data_.size(), other.data_.size(),
                 "axpy requires matching sizes");
  const float* o = other.data_.data();
  float* d = data_.data();
  for (std::size_t i = 0; i < data_.size(); ++i) d[i] += alpha * o[i];
}

void Tensor::scale(float alpha) {
  for (auto& x : data_) x *= alpha;
}

float Tensor::sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return static_cast<float>(s);
}

float Tensor::l2_norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

float Tensor::max_abs() const {
  float m = 0.0F;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

std::string Tensor::shape_str() const {
  std::ostringstream oss;
  oss << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << shape_[i];
  }
  oss << ']';
  return oss.str();
}

namespace {

void check_matrix(const Tensor& t, const char* name) {
  DSHUF_CHECK_EQ(t.rank(), 2U, name << " must be a matrix");
}

}  // namespace

void gemm(const Tensor& a, const Tensor& b, Tensor& out, bool accumulate) {
  check_matrix(a, "a");
  check_matrix(b, "b");
  check_matrix(out, "out");
  const std::size_t M = a.rows();
  const std::size_t K = a.cols();
  const std::size_t N = b.cols();
  DSHUF_CHECK_EQ(b.rows(), K, "gemm inner dimensions must match");
  DSHUF_CHECK_EQ(out.rows(), M, "gemm output rows mismatch");
  DSHUF_CHECK_EQ(out.cols(), N, "gemm output cols mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  if (!accumulate) out.zero();
  // ikj order: streams through b and out rows; good cache behaviour for the
  // small-to-medium matrices in this workload without a full blocked kernel.
  for (std::size_t i = 0; i < M; ++i) {
    const float* arow = pa + i * K;
    float* orow = po + i * N;
    for (std::size_t k = 0; k < K; ++k) {
      const float aik = arow[k];
      if (aik == 0.0F) continue;
      const float* brow = pb + k * N;
      for (std::size_t j = 0; j < N; ++j) orow[j] += aik * brow[j];
    }
  }
}

void gemm_at_b(const Tensor& a, const Tensor& b, Tensor& out,
               bool accumulate) {
  check_matrix(a, "a");
  check_matrix(b, "b");
  check_matrix(out, "out");
  const std::size_t K = a.rows();  // shared (batch) dimension
  const std::size_t M = a.cols();
  const std::size_t N = b.cols();
  DSHUF_CHECK_EQ(b.rows(), K, "gemm_at_b batch dimensions must match");
  DSHUF_CHECK_EQ(out.rows(), M, "gemm_at_b output rows mismatch");
  DSHUF_CHECK_EQ(out.cols(), N, "gemm_at_b output cols mismatch");
  if (!accumulate) out.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::size_t k = 0; k < K; ++k) {
    const float* arow = pa + k * M;
    const float* brow = pb + k * N;
    for (std::size_t i = 0; i < M; ++i) {
      const float aki = arow[i];
      if (aki == 0.0F) continue;
      float* orow = po + i * N;
      for (std::size_t j = 0; j < N; ++j) orow[j] += aki * brow[j];
    }
  }
}

void gemm_a_bt(const Tensor& a, const Tensor& b, Tensor& out,
               bool accumulate) {
  check_matrix(a, "a");
  check_matrix(b, "b");
  check_matrix(out, "out");
  const std::size_t M = a.rows();
  const std::size_t K = a.cols();
  const std::size_t N = b.rows();  // b is NxK
  DSHUF_CHECK_EQ(b.cols(), K, "gemm_a_bt inner dimensions must match");
  DSHUF_CHECK_EQ(out.rows(), M, "gemm_a_bt output rows mismatch");
  DSHUF_CHECK_EQ(out.cols(), N, "gemm_a_bt output cols mismatch");
  if (!accumulate) out.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::size_t i = 0; i < M; ++i) {
    const float* arow = pa + i * K;
    float* orow = po + i * N;
    for (std::size_t j = 0; j < N; ++j) {
      const float* brow = pb + j * K;
      double acc = 0.0;
      for (std::size_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
      orow[j] += static_cast<float>(acc);
    }
  }
}

std::vector<std::uint32_t> argmax_rows(const Tensor& m) {
  check_matrix(m, "m");
  std::vector<std::uint32_t> out(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* row = m.data() + i * m.cols();
    std::size_t best = 0;
    for (std::size_t j = 1; j < m.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = static_cast<std::uint32_t>(best);
  }
  return out;
}

}  // namespace dshuf
