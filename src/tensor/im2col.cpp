#include "tensor/im2col.hpp"

#include <algorithm>
#include <cstring>

#include "task/scheduler.hpp"

namespace dshuf::kernel {

namespace {

/// Valid t-range [lo, hi) of kernel tap k: src = t + k - pad must lie in
/// [0, length). Signed math because pad - k can be negative.
void tap_range(std::size_t length, std::size_t kernel, std::size_t k,
               std::size_t& lo, std::size_t& hi) {
  const auto len = static_cast<std::ptrdiff_t>(length);
  const auto off = static_cast<std::ptrdiff_t>(k) -
                   static_cast<std::ptrdiff_t>(kernel / 2);
  lo = static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, -off));
  hi = static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(len - off, 0, len));
}

/// Fan out only when a scheduler is running and the copy volume amortises
/// the submit overhead. Shape-only, so the decision is deterministic.
bool parallel_worthwhile(std::size_t rows, std::size_t nl) {
  return task::global_scheduler() != nullptr && rows > 1 &&
         rows * nl >= (1U << 16);
}

}  // namespace

void im2col_1d(const float* x, std::size_t n_batch, std::size_t in_c,
               std::size_t length, std::size_t kernel, Tensor& cols) {
  const std::size_t pad = kernel / 2;
  const std::size_t nl = n_batch * length;
  cols.resize2(in_c * kernel, nl);
  float* pc = cols.data();
  // Each (ic, k) output row is written by exactly one chunk (disjoint
  // writes, pure copies) — parallel output is identical to serial.
  const std::size_t rows = in_c * kernel;
  const auto body = [&](std::size_t row_begin, std::size_t row_end) {
    for (std::size_t row = row_begin; row < row_end; ++row) {
      const std::size_t ic = row / kernel;
      const std::size_t k = row % kernel;
      std::size_t lo = 0;
      std::size_t hi = 0;
      tap_range(length, kernel, k, lo, hi);
      float* crow = pc + row * nl;
      for (std::size_t n = 0; n < n_batch; ++n) {
        float* dst = crow + n * length;
        if (lo > 0) std::memset(dst, 0, lo * sizeof(float));
        if (hi > lo) {
          const float* src =
              x + n * in_c * length + ic * length + (lo + k - pad);
          std::memcpy(dst + lo, src, (hi - lo) * sizeof(float));
        }
        if (hi < length) {
          std::memset(dst + hi, 0, (length - hi) * sizeof(float));
        }
      }
    }
  };
  if (parallel_worthwhile(rows, nl)) {
    task::global_scheduler()->parallel_for(0, rows, 1, body);
  } else {
    body(0, rows);
  }
}

void col2im_1d(const Tensor& dcols, std::size_t n_batch, std::size_t in_c,
               std::size_t length, std::size_t kernel, float* grad_x) {
  const std::size_t pad = kernel / 2;
  const std::size_t nl = n_batch * length;
  DSHUF_CHECK_EQ(dcols.rows(), in_c * kernel, "col2im row mismatch");
  DSHUF_CHECK_EQ(dcols.cols(), nl, "col2im column mismatch");
  const float* pc = dcols.data();
  // Scatter-add: the k taps of ONE channel overlap in grad_x, so the
  // parallel unit is a whole channel (chunks of ic — disjoint grad_x
  // slices) with the k loop kept serial and ascending inside. Every
  // grad_x element therefore receives its additions in exactly the serial
  // order — bit-identical for any worker count.
  const auto body = [&](std::size_t ic_begin, std::size_t ic_end) {
    for (std::size_t ic = ic_begin; ic < ic_end; ++ic) {
      for (std::size_t k = 0; k < kernel; ++k) {
        std::size_t lo = 0;
        std::size_t hi = 0;
        tap_range(length, kernel, k, lo, hi);
        const float* crow = pc + (ic * kernel + k) * nl;
        for (std::size_t n = 0; n < n_batch; ++n) {
          const float* src = crow + n * length + lo;
          float* dst =
              grad_x + n * in_c * length + ic * length + (lo + k - pad);
          const std::size_t run = hi - lo;
          for (std::size_t t = 0; t < run; ++t) dst[t] += src[t];
        }
      }
    }
  };
  if (parallel_worthwhile(in_c, kernel * nl)) {
    task::global_scheduler()->parallel_for(0, in_c, 1, body);
  } else {
    body(0, in_c);
  }
}

}  // namespace dshuf::kernel
