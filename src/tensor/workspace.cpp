#include "tensor/workspace.hpp"

namespace dshuf {

Tensor& Workspace::slot(const void* owner, int id) {
  return slots_[std::make_pair(owner, id)];
}

Tensor& Workspace::slot1(const void* owner, int id, std::size_t n) {
  Tensor& t = slot(owner, id);
  t.resize1(n);
  return t;
}

Tensor& Workspace::slot2(const void* owner, int id, std::size_t rows,
                         std::size_t cols) {
  Tensor& t = slot(owner, id);
  t.resize2(rows, cols);
  return t;
}

std::size_t Workspace::bytes_reserved() const {
  std::size_t bytes = 0;
  for (const auto& [key, t] : slots_) {
    bytes += t.vec().capacity() * sizeof(float);
  }
  return bytes;
}

}  // namespace dshuf
