// Reusable scratch-tensor arena for the training hot path.
//
// A Workspace owns named tensor slots keyed by (owner pointer, slot id).
// Slots are created on first use and keep their heap capacity forever
// after, so re-acquiring a slot with the same (or a smaller) shape every
// iteration is allocation-free: the steady state of a training loop does
// zero heap traffic through the workspace (asserted by the operator-new
// counting test in tests/test_workspace.cpp). One workspace per model /
// worker; layers reach it through Layer::scratch().
//
// Not thread-safe: a workspace belongs to exactly one (virtual) worker,
// matching the simulator's sequential-workers execution model.
#pragma once

#include <cstddef>
#include <map>
#include <utility>

#include "tensor/tensor.hpp"

namespace dshuf {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// Find-or-create the slot (owner, id); shape is left as-is (the caller
  /// resizes). The reference stays valid until clear().
  Tensor& slot(const void* owner, int id);

  /// Slot shaped to [n] / [rows, cols], reusing capacity.
  Tensor& slot1(const void* owner, int id, std::size_t n);
  Tensor& slot2(const void* owner, int id, std::size_t rows,
                std::size_t cols);

  /// Number of live slots.
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

  /// Total float capacity held across slots, in bytes (the arena's
  /// steady-state footprint; exported as an obs gauge by the trainer).
  [[nodiscard]] std::size_t bytes_reserved() const;

  /// Drop every slot (and its capacity).
  void clear() { slots_.clear(); }

 private:
  // Ordered map: deterministic iteration for bytes_reserved(), and
  // find() on the hot path never allocates.
  std::map<std::pair<const void*, int>, Tensor> slots_;
};

}  // namespace dshuf
