// Retained naive reference kernels.
//
// These are the pre-overhaul scalar implementations, kept for three jobs:
// (1) the kernel-equivalence test suite checks the blocked GEMM and the
// im2col Conv1d against them across awkward shapes; (2) the
// KernelBackend::kReference switch routes the whole training stack
// through them so tools/dshuf_bench can measure genuine before/after
// numbers with one binary; (3) they document the semantics the optimised
// kernels must preserve. They are intentionally unoptimised — no one
// should "fix" their performance.
#pragma once

#include <cstddef>

namespace dshuf::kernel_ref {

/// c(MxN) = a * b (+ c when accumulate); same operand conventions as
/// kernel::gemm_blocked (a_transposed: a stored KxM; b_transposed: b
/// stored NxK). Each output element is one ascending-k float accumulator
/// chain, matching the blocked kernel's rounding order.
void gemm_ref(const float* a, const float* b, float* c, std::size_t m,
              std::size_t n, std::size_t k, bool a_transposed,
              bool b_transposed, bool accumulate);

/// Scalar same-padding Conv1d forward: x is [n_batch, in_c*length]
/// channel-major, w is [out_c, in_c, kernel] flattened, y must hold
/// [n_batch, out_c*length]. Double accumulation per output, as the
/// original layer did.
void conv1d_forward_ref(const float* x, const float* w, const float* bias,
                        float* y, std::size_t n_batch, std::size_t in_c,
                        std::size_t out_c, std::size_t length,
                        std::size_t kernel);

/// Scalar Conv1d backward. grad_x must be zeroed by the caller; dw and
/// dbias are accumulated into (the layer's grad-accumulation contract).
void conv1d_backward_ref(const float* x, const float* w,
                         const float* grad_y, float* grad_x, float* dw,
                         float* dbias, std::size_t n_batch, std::size_t in_c,
                         std::size_t out_c, std::size_t length,
                         std::size_t kernel);

}  // namespace dshuf::kernel_ref
