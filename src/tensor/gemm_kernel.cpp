#include "tensor/gemm_kernel.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/error.hpp"

namespace dshuf::kernel {

namespace {

/// ap: K x kMR micro-panel (k-major), bp: K x kNR micro-panel (k-major).
/// acc receives the kMR x kNR tile. The local array keeps the whole tile
/// in registers across the K loop; each acc element is one ascending-k
/// accumulator chain (the determinism contract in the header).
void micro_kernel(std::size_t k_dim, const float* ap, const float* bp,
                  float* acc) {
  float c[kMR][kNR] = {};
  for (std::size_t k = 0; k < k_dim; ++k) {
    const float* a = ap + k * kMR;
    const float* b = bp + k * kNR;
    for (std::size_t r = 0; r < kMR; ++r) {
      const float av = a[r];
      for (std::size_t j = 0; j < kNR; ++j) {
        c[r][j] += av * b[j];
      }
    }
  }
  std::memcpy(acc, c, sizeof(c));
}

std::size_t round_up(std::size_t v, std::size_t to) {
  return (v + to - 1) / to * to;
}

/// Pack `mb` rows of A starting at row `ic` into k-major kMR micro-panels,
/// zero-padding the last panel's missing rows. When transposed, A is
/// stored K x M and a[k*m + i] is element (i, k).
void pack_a(const float* a, std::size_t m, std::size_t k_dim, std::size_t ic,
            std::size_t mb, bool transposed, float* dst) {
  for (std::size_t i0 = 0; i0 < mb; i0 += kMR) {
    const std::size_t iw = std::min(kMR, mb - i0);
    float* panel = dst + i0 * k_dim;
    if (transposed) {
      for (std::size_t k = 0; k < k_dim; ++k) {
        const float* src = a + k * m + ic + i0;
        float* out = panel + k * kMR;
        for (std::size_t r = 0; r < iw; ++r) out[r] = src[r];
        for (std::size_t r = iw; r < kMR; ++r) out[r] = 0.0F;
      }
    } else {
      for (std::size_t k = 0; k < k_dim; ++k) {
        float* out = panel + k * kMR;
        for (std::size_t r = 0; r < iw; ++r) {
          out[r] = a[(ic + i0 + r) * k_dim + k];
        }
        for (std::size_t r = iw; r < kMR; ++r) out[r] = 0.0F;
      }
    }
  }
}

/// Pack `nb` columns of B starting at column `jc` into k-major kNR
/// micro-panels, zero-padding the last panel's missing columns. When
/// transposed, B is stored N x K and b[j*k + k] is element (k, j).
void pack_b(const float* b, std::size_t n, std::size_t k_dim, std::size_t jc,
            std::size_t nb, bool transposed, float* dst) {
  for (std::size_t j0 = 0; j0 < nb; j0 += kNR) {
    const std::size_t jw = std::min(kNR, nb - j0);
    float* panel = dst + j0 * k_dim;
    if (transposed) {
      for (std::size_t k = 0; k < k_dim; ++k) {
        float* out = panel + k * kNR;
        for (std::size_t j = 0; j < jw; ++j) {
          out[j] = b[(jc + j0 + j) * k_dim + k];
        }
        for (std::size_t j = jw; j < kNR; ++j) out[j] = 0.0F;
      }
    } else {
      for (std::size_t k = 0; k < k_dim; ++k) {
        const float* src = b + k * n + jc + j0;
        float* out = panel + k * kNR;
        for (std::size_t j = 0; j < jw; ++j) out[j] = src[j];
        for (std::size_t j = jw; j < kNR; ++j) out[j] = 0.0F;
      }
    }
  }
}

}  // namespace

void gemm_blocked(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t n, std::size_t k, bool a_transposed,
                  bool b_transposed, bool accumulate,
                  const BlockConfig& cfg) {
  DSHUF_CHECK_GT(cfg.mc, 0U, "block config mc must be positive");
  DSHUF_CHECK_GT(cfg.nc, 0U, "block config nc must be positive");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
    return;
  }

  // Pack buffers persist across calls (allocation-free steady state); one
  // worker per thread matches the simulator's execution model.
  static thread_local std::vector<float> a_pack;
  static thread_local std::vector<float> b_pack;
  alignas(64) float acc[kMR * kNR];

  for (std::size_t jc = 0; jc < n; jc += cfg.nc) {
    const std::size_t nb = std::min(cfg.nc, n - jc);
    b_pack.resize(k * round_up(nb, kNR));
    pack_b(b, n, k, jc, nb, b_transposed, b_pack.data());

    for (std::size_t ic = 0; ic < m; ic += cfg.mc) {
      const std::size_t mb = std::min(cfg.mc, m - ic);
      a_pack.resize(k * round_up(mb, kMR));
      pack_a(a, m, k, ic, mb, a_transposed, a_pack.data());

      for (std::size_t j0 = 0; j0 < nb; j0 += kNR) {
        const std::size_t jw = std::min(kNR, nb - j0);
        for (std::size_t i0 = 0; i0 < mb; i0 += kMR) {
          const std::size_t iw = std::min(kMR, mb - i0);
          micro_kernel(k, a_pack.data() + i0 * k, b_pack.data() + j0 * k,
                       acc);
          // Merge the tile, dropping zero-padded edge lanes.
          for (std::size_t r = 0; r < iw; ++r) {
            float* crow = c + (ic + i0 + r) * n + jc + j0;
            const float* arow = acc + r * kNR;
            if (accumulate) {
              for (std::size_t j = 0; j < jw; ++j) crow[j] += arow[j];
            } else {
              for (std::size_t j = 0; j < jw; ++j) crow[j] = arow[j];
            }
          }
        }
      }
    }
  }
}

}  // namespace dshuf::kernel
