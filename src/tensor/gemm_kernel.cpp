#include "tensor/gemm_kernel.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "task/scheduler.hpp"
#include "util/error.hpp"

namespace dshuf::kernel {

namespace {

/// ap: K x kMR micro-panel (k-major), bp: K x kNR micro-panel (k-major).
/// acc receives the kMR x kNR tile. The local array keeps the whole tile
/// in registers across the K loop; each acc element is one ascending-k
/// accumulator chain (the determinism contract in the header).
void micro_kernel(std::size_t k_dim, const float* ap, const float* bp,
                  float* acc) {
  float c[kMR][kNR] = {};
  for (std::size_t k = 0; k < k_dim; ++k) {
    const float* a = ap + k * kMR;
    const float* b = bp + k * kNR;
    for (std::size_t r = 0; r < kMR; ++r) {
      const float av = a[r];
      for (std::size_t j = 0; j < kNR; ++j) {
        c[r][j] += av * b[j];
      }
    }
  }
  std::memcpy(acc, c, sizeof(c));
}

std::size_t round_up(std::size_t v, std::size_t to) {
  return (v + to - 1) / to * to;
}

/// Pack `mb` rows of A starting at row `ic` into k-major kMR micro-panels,
/// zero-padding the last panel's missing rows. When transposed, A is
/// stored K x M and a[k*m + i] is element (i, k).
void pack_a(const float* a, std::size_t m, std::size_t k_dim, std::size_t ic,
            std::size_t mb, bool transposed, float* dst) {
  for (std::size_t i0 = 0; i0 < mb; i0 += kMR) {
    const std::size_t iw = std::min(kMR, mb - i0);
    float* panel = dst + i0 * k_dim;
    if (transposed) {
      for (std::size_t k = 0; k < k_dim; ++k) {
        const float* src = a + k * m + ic + i0;
        float* out = panel + k * kMR;
        for (std::size_t r = 0; r < iw; ++r) out[r] = src[r];
        for (std::size_t r = iw; r < kMR; ++r) out[r] = 0.0F;
      }
    } else {
      for (std::size_t k = 0; k < k_dim; ++k) {
        float* out = panel + k * kMR;
        for (std::size_t r = 0; r < iw; ++r) {
          out[r] = a[(ic + i0 + r) * k_dim + k];
        }
        for (std::size_t r = iw; r < kMR; ++r) out[r] = 0.0F;
      }
    }
  }
}

/// Pack `nb` columns of B starting at column `jc` into k-major kNR
/// micro-panels, zero-padding the last panel's missing columns. When
/// transposed, B is stored N x K and b[j*k + k] is element (k, j).
void pack_b(const float* b, std::size_t n, std::size_t k_dim, std::size_t jc,
            std::size_t nb, bool transposed, float* dst) {
  for (std::size_t j0 = 0; j0 < nb; j0 += kNR) {
    const std::size_t jw = std::min(kNR, nb - j0);
    float* panel = dst + j0 * k_dim;
    if (transposed) {
      for (std::size_t k = 0; k < k_dim; ++k) {
        float* out = panel + k * kNR;
        for (std::size_t j = 0; j < jw; ++j) {
          out[j] = b[(jc + j0 + j) * k_dim + k];
        }
        for (std::size_t j = jw; j < kNR; ++j) out[j] = 0.0F;
      }
    } else {
      for (std::size_t k = 0; k < k_dim; ++k) {
        const float* src = b + k * n + jc + j0;
        float* out = panel + k * kNR;
        for (std::size_t j = 0; j < jw; ++j) out[j] = src[j];
        for (std::size_t j = jw; j < kNR; ++j) out[j] = 0.0F;
      }
    }
  }
}

/// Per-thread A-pack buffer. Shared by the serial path and every
/// parallel_for chunk (each executing thread packs its own A block), so
/// steady-state calls stay allocation-free on every worker.
thread_local std::vector<float> t_a_pack;

/// Work a contiguous range of M blocks [blk_begin, blk_end) of one
/// (jc, nb) N block: pack each A block locally, then run the micro-kernel
/// grid against the caller-packed B panel `bp`. Chunks own disjoint C
/// rows, so this is the unit parallel_for fans out.
void run_m_blocks(const float* a, const float* bp, float* c, std::size_t m,
                  std::size_t n, std::size_t k, bool a_transposed,
                  bool accumulate, std::size_t jc, std::size_t nb,
                  std::size_t mc_eff, std::size_t blk_begin,
                  std::size_t blk_end) {
  std::vector<float>& a_pack = t_a_pack;
  alignas(64) float acc[kMR * kNR];
  for (std::size_t blk = blk_begin; blk < blk_end; ++blk) {
    const std::size_t ic = blk * mc_eff;
    const std::size_t mb = std::min(mc_eff, m - ic);
    a_pack.resize(k * round_up(mb, kMR));
    pack_a(a, m, k, ic, mb, a_transposed, a_pack.data());

    for (std::size_t j0 = 0; j0 < nb; j0 += kNR) {
      const std::size_t jw = std::min(kNR, nb - j0);
      for (std::size_t i0 = 0; i0 < mb; i0 += kMR) {
        const std::size_t iw = std::min(kMR, mb - i0);
        micro_kernel(k, a_pack.data() + i0 * k, bp + j0 * k, acc);
        // Merge the tile, dropping zero-padded edge lanes.
        for (std::size_t r = 0; r < iw; ++r) {
          float* crow = c + (ic + i0 + r) * n + jc + j0;
          const float* arow = acc + r * kNR;
          if (accumulate) {
            for (std::size_t j = 0; j < jw; ++j) crow[j] += arow[j];
          } else {
            for (std::size_t j = 0; j < jw; ++j) crow[j] = arow[j];
          }
        }
      }
    }
  }
}

}  // namespace

void gemm_blocked(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t n, std::size_t k, bool a_transposed,
                  bool b_transposed, bool accumulate,
                  const BlockConfig& cfg) {
  DSHUF_CHECK_GT(cfg.mc, 0U, "block config mc must be positive");
  DSHUF_CHECK_GT(cfg.nc, 0U, "block config nc must be positive");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
    return;
  }

  // B-pack buffer persists across calls (allocation-free steady state);
  // it belongs to the calling thread and is shared read-only with chunks.
  static thread_local std::vector<float> b_pack;

  // Fan out only when the scheduler exists and the problem amortises the
  // submit/steal overhead (the threshold is shape-only so the decision —
  // though not the result, which is schedule-independent — is
  // deterministic). ~2 MFLOP ≈ a 100x100x100 GEMM.
  task::Scheduler* const sched = task::global_scheduler();
  const bool parallel = sched != nullptr && m > kMR && m * n * k >= (1U << 20);

  // Smaller M blocks for the parallel path so there are ~2 chunks per
  // worker to steal. Any mc gives bit-identical results (header
  // contract), so this only changes the work granularity.
  std::size_t mc_eff = cfg.mc;
  if (parallel) {
    const std::size_t workers = sched->workers();
    const std::size_t target = (m + 2 * workers - 1) / (2 * workers);
    mc_eff = std::clamp(round_up(target, kMR), kMR, cfg.mc);
  }
  const std::size_t m_blocks = (m + mc_eff - 1) / mc_eff;

  for (std::size_t jc = 0; jc < n; jc += cfg.nc) {
    const std::size_t nb = std::min(cfg.nc, n - jc);
    b_pack.resize(k * round_up(nb, kNR));
    pack_b(b, n, k, jc, nb, b_transposed, b_pack.data());
    const float* const bp = b_pack.data();

    const auto body = [&](std::size_t blk_begin, std::size_t blk_end) {
      run_m_blocks(a, bp, c, m, n, k, a_transposed, accumulate, jc, nb,
                   mc_eff, blk_begin, blk_end);
    };
    if (parallel && m_blocks > 1) {
      sched->parallel_for(0, m_blocks, 1, body);
    } else {
      body(0, m_blocks);
    }
  }
}

}  // namespace dshuf::kernel
