// Dense float32 tensor.
//
// The dshuf training substrate only needs row-major dense 1-D/2-D tensors
// (minibatches are [batch, features]); the class nevertheless supports
// arbitrary rank for dataset payloads. Data is owned by the tensor
// (value semantics; moves are cheap). All shape errors are hard failures —
// an experiment with silently mis-shaped math is worse than a crash.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace dshuf {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  /// Tensor adopting existing data; data.size() must equal product(shape).
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  static Tensor zeros(std::initializer_list<std::size_t> shape) {
    return Tensor(shape);
  }
  static Tensor full(std::vector<std::size_t> shape, float value);
  /// Gaussian init with the given stddev (He/Xavier handled by callers).
  static Tensor randn(std::vector<std::size_t> shape, Rng& rng,
                      float stddev = 1.0F);

  [[nodiscard]] const std::vector<std::size_t>& shape() const {
    return shape_;
  }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Dimension i of the shape; checked.
  [[nodiscard]] std::size_t dim(std::size_t i) const {
    DSHUF_CHECK_LT(i, shape_.size(), "dim index out of range");
    return shape_[i];
  }

  /// Rows/cols of a rank-2 tensor; checked.
  [[nodiscard]] std::size_t rows() const {
    DSHUF_CHECK_EQ(rank(), 2U, "rows() requires a matrix");
    return shape_[0];
  }
  [[nodiscard]] std::size_t cols() const {
    DSHUF_CHECK_EQ(rank(), 2U, "cols() requires a matrix");
    return shape_[1];
  }

  float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  [[nodiscard]] const std::vector<float>& vec() const { return data_; }

  /// Flat element access (checked).
  float& at(std::size_t i) {
    DSHUF_CHECK_LT(i, data_.size(), "flat index out of range");
    return data_[i];
  }
  [[nodiscard]] float at(std::size_t i) const {
    DSHUF_CHECK_LT(i, data_.size(), "flat index out of range");
    return data_[i];
  }

  /// 2-D element access (checked).
  float& at(std::size_t r, std::size_t c) {
    DSHUF_CHECK_EQ(rank(), 2U, "2-D access requires a matrix");
    DSHUF_CHECK_LT(r, shape_[0], "row out of range");
    DSHUF_CHECK_LT(c, shape_[1], "col out of range");
    return data_[r * shape_[1] + c];
  }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const {
    return const_cast<Tensor*>(this)->at(r, c);
  }

  /// Reinterpret the shape without touching the data; sizes must match.
  void reshape(std::vector<std::size_t> shape);

  /// Reshape to [n] / [rows, cols] / `shape`, resizing the storage.
  /// Existing element values are NOT preserved meaningfully; capacity is
  /// reused, so shrinking and re-growing within a previous high-water mark
  /// never reallocates. These are the workhorses of the allocation-free
  /// training steady state (see tensor/workspace.hpp).
  void resize1(std::size_t n);
  void resize2(std::size_t rows, std::size_t cols);
  void resize_like(const Tensor& other);

  void fill(float v);
  void zero() { fill(0.0F); }

  /// this += alpha * other (shapes must match).
  void axpy(float alpha, const Tensor& other);
  /// this *= alpha.
  void scale(float alpha);

  [[nodiscard]] float sum() const;
  [[nodiscard]] float l2_norm() const;
  [[nodiscard]] float max_abs() const;

  /// Human-readable "[a, b, c]" shape string for diagnostics.
  [[nodiscard]] std::string shape_str() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// Number of elements implied by a shape (empty shape => 0 for an empty
/// tensor, but {1} style scalars have size 1).
std::size_t shape_numel(const std::vector<std::size_t>& shape);

/// dst becomes a copy of src, reusing dst's capacity — allocation-free
/// once dst has held a tensor at least this large.
void copy_into(const Tensor& src, Tensor& dst);

// --- BLAS-like free functions (row-major) ---------------------------------

/// Which dense-compute implementation the gemm/conv entry points use.
/// kBlocked is the packed, register-tiled production kernel; kReference is
/// the retained naive kernel, kept for equivalence testing and for
/// before/after measurement (tools/dshuf_bench). Process-wide; intended
/// for tests and benches only — experiments always run kBlocked.
///
/// Thread model: the switch is an atomic with release/acquire semantics —
/// set_kernel_backend publishes with release, kernel_backend reads with
/// acquire, so a thread that observes the new value also observes
/// everything the flipping thread wrote before the flip. Each gemm/conv
/// call reads the switch exactly ONCE at dispatch, so a single call never
/// tears across a concurrent flip: it runs entirely on the backend it
/// observed (both backends compute the same values, only the rounding
/// schedule differs). Flipping while task-scheduler workers run compute
/// is therefore safe; for DETERMINISTIC results flip from the thread that
/// submits the work, before submitting (scheduler enqueue/steal ordering
/// then guarantees every task sees the flip).
enum class KernelBackend { kBlocked, kReference };

[[nodiscard]] KernelBackend kernel_backend();
void set_kernel_backend(KernelBackend backend);

/// RAII helper: switch the backend for a scope (tests/benches). Same
/// thread model as set_kernel_backend — construct/destroy it on the
/// thread that submits the compute.
class ScopedKernelBackend {
 public:
  explicit ScopedKernelBackend(KernelBackend backend)
      : prev_(kernel_backend()) {
    set_kernel_backend(backend);
  }
  ScopedKernelBackend(const ScopedKernelBackend&) = delete;
  ScopedKernelBackend& operator=(const ScopedKernelBackend&) = delete;
  ~ScopedKernelBackend() { set_kernel_backend(prev_); }

 private:
  KernelBackend prev_;
};

/// out = a(MxK) * b(KxN). out must be pre-shaped MxN; accumulate=false
/// overwrites, true adds into out.
void gemm(const Tensor& a, const Tensor& b, Tensor& out,
          bool accumulate = false);

/// out = a^T(KxM -> MxK view) * b(KxN): i.e. out(MxN) = a'(MxK) b with a
/// stored as KxM. Used for weight gradients dW = X^T dY.
void gemm_at_b(const Tensor& a, const Tensor& b, Tensor& out,
               bool accumulate = false);

/// out = a(MxK) * b^T with b stored as NxK: out is MxN. Used for input
/// gradients dX = dY W^T.
void gemm_a_bt(const Tensor& a, const Tensor& b, Tensor& out,
               bool accumulate = false);

/// Row-wise argmax of a matrix (per-sample prediction).
std::vector<std::uint32_t> argmax_rows(const Tensor& m);

}  // namespace dshuf
