#include "tensor/kernel_ref.hpp"

#include <cstring>

namespace dshuf::kernel_ref {

void gemm_ref(const float* a, const float* b, float* c, std::size_t m,
              std::size_t n, std::size_t k, bool a_transposed,
              bool b_transposed, bool accumulate) {
  if (!accumulate && m * n > 0) std::memset(c, 0, m * n * sizeof(float));
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0F;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = a_transposed ? a[kk * m + i] : a[i * k + kk];
        const float bv = b_transposed ? b[j * k + kk] : b[kk * n + j];
        acc += av * bv;
      }
      crow[j] += acc;
    }
  }
}

void conv1d_forward_ref(const float* x, const float* w, const float* bias,
                        float* y, std::size_t n_batch, std::size_t in_c,
                        std::size_t out_c, std::size_t length,
                        std::size_t kernel) {
  const std::size_t pad = kernel / 2;
  for (std::size_t n = 0; n < n_batch; ++n) {
    const float* row = x + n * in_c * length;
    float* orow = y + n * out_c * length;
    for (std::size_t oc = 0; oc < out_c; ++oc) {
      for (std::size_t t = 0; t < length; ++t) {
        double acc = bias[oc];
        for (std::size_t ic = 0; ic < in_c; ++ic) {
          for (std::size_t k = 0; k < kernel; ++k) {
            const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(t + k) -
                                       static_cast<std::ptrdiff_t>(pad);
            if (src < 0 || src >= static_cast<std::ptrdiff_t>(length)) {
              continue;  // zero padding
            }
            acc += w[(oc * in_c + ic) * kernel + k] *
                   row[ic * length + static_cast<std::size_t>(src)];
          }
        }
        orow[oc * length + t] = static_cast<float>(acc);
      }
    }
  }
}

void conv1d_backward_ref(const float* x, const float* w,
                         const float* grad_y, float* grad_x, float* dw,
                         float* dbias, std::size_t n_batch, std::size_t in_c,
                         std::size_t out_c, std::size_t length,
                         std::size_t kernel) {
  const std::size_t pad = kernel / 2;
  for (std::size_t n = 0; n < n_batch; ++n) {
    const float* row = x + n * in_c * length;
    const float* grow = grad_y + n * out_c * length;
    float* girow = grad_x + n * in_c * length;
    for (std::size_t oc = 0; oc < out_c; ++oc) {
      for (std::size_t t = 0; t < length; ++t) {
        const float g = grow[oc * length + t];
        dbias[oc] += g;
        for (std::size_t ic = 0; ic < in_c; ++ic) {
          for (std::size_t k = 0; k < kernel; ++k) {
            const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(t + k) -
                                       static_cast<std::ptrdiff_t>(pad);
            if (src < 0 || src >= static_cast<std::ptrdiff_t>(length)) {
              continue;
            }
            const auto s = static_cast<std::size_t>(src);
            dw[(oc * in_c + ic) * kernel + k] += g * row[ic * length + s];
            girow[ic * length + s] += g * w[(oc * in_c + ic) * kernel + k];
          }
        }
      }
    }
  }
}

}  // namespace dshuf::kernel_ref
