// Packed, cache-blocked, register-tiled single-core GEMM.
//
// One micro-kernel computes a kMR x kNR output tile as a rank-1-update
// sum over the full K dimension, with all kMR*kNR accumulators held in
// registers (auto-vectorized; compiled with -march=native when
// DSHUF_NATIVE_ARCH is on). A and B operands are packed into k-major
// micro-panels first so the micro-kernel streams both with unit stride.
//
// Determinism contract: every output element is produced by a single
// accumulator chain over k = 0..K-1 in ascending order, with zero-padded
// edge lanes never stored — so results are bit-identical across runs AND
// independent of the cache-block configuration (mc, nc). There is
// deliberately no K-blocking: carrying partial sums through C between K
// panels would make the rounding order depend on the block size.
// tests/test_kernels.cpp asserts both properties.
//
// Multicore: when the global task scheduler is active and the problem is
// large enough, the M-block loop inside each N block fans out as
// parallel_for chunks. Each chunk owns disjoint C rows and packs its own
// A block; B is packed once by the caller and shared read-only. Because
// the per-element accumulator chain is untouched (only WHICH thread runs
// a given M block changes, never the arithmetic within it), multicore
// results are bit-identical to the single-core ones for any worker count
// — tests/test_task_determinism.cpp asserts this. Task bodies submitted
// to the scheduler must not themselves call gemm_blocked: the shared
// packed-B panel is thread_local to the caller, and a nested call from a
// helping thread would resize it mid-use.
//
// Pack buffers are thread_local and keep their capacity, so steady-state
// calls are allocation-free.
#pragma once

#include <cstddef>

namespace dshuf::kernel {

/// Rows / cols of the register micro-tile. kMR*kNR accumulators must fit
/// the vector register file (8x32 floats = 16 AVX-512 zmm registers).
inline constexpr std::size_t kMR = 8;
inline constexpr std::size_t kNR = 32;

/// Cache-block sizes (rows of A / cols of B packed per panel). Any
/// positive values give bit-identical results; these default to panels
/// that keep the packed A block plus a B micro-panel L2-resident for the
/// K range this workload sees (K <= ~4096).
struct BlockConfig {
  std::size_t mc = 64;
  std::size_t nc = 512;
};

/// c(MxN) = a * b (+ c when accumulate).
///
/// a_transposed: a is stored K x M and used as its transpose (the
/// gemm_at_b weight-gradient case). b_transposed: b is stored N x K and
/// used as its transpose (the gemm_a_bt input-gradient case). Plain
/// row-major storage otherwise. Pointers must not alias.
void gemm_blocked(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t n, std::size_t k, bool a_transposed,
                  bool b_transposed, bool accumulate,
                  const BlockConfig& cfg = {});

}  // namespace dshuf::kernel
