// im2col / col2im for 1-D same-padded convolution.
//
// Lowers a [n_batch, in_c * length] channel-major signal batch into a
// column matrix cols[in_c * kernel, n_batch * length] (row ic*kernel + k,
// column n*length + t holds x[n][ic][t + k - pad], zero outside the
// signal) so that Conv1d forward becomes a single GEMM:
//   out_big[out_c, n_batch * length] = W[out_c, in_c * kernel] * cols.
// col2im is the adjoint scatter-add used by the backward pass.
//
// The valid window of each (ic, k) row is one contiguous run in t, so the
// interior is a memcpy per (n, ic, k) rather than an element loop.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace dshuf::kernel {

/// Fills cols (resized to [in_c * kernel, n_batch * length], capacity
/// reused) from x = [n_batch, in_c * length]; pad = kernel / 2.
void im2col_1d(const float* x, std::size_t n_batch, std::size_t in_c,
               std::size_t length, std::size_t kernel, Tensor& cols);

/// Adjoint of im2col_1d: scatter-adds dcols[in_c * kernel,
/// n_batch * length] back into grad_x = [n_batch, in_c * length].
/// The caller must zero grad_x first.
void col2im_1d(const Tensor& dcols, std::size_t n_batch, std::size_t in_c,
               std::size_t length, std::size_t kernel, float* grad_x);

}  // namespace dshuf::kernel
