// Upstream-pretraining / downstream-fine-tuning experiment (Fig. 8).
//
// Pretrains a model on the fine-grained (ImageNet-21K proxy) task under a
// chosen shuffling strategy, transplants the trunk weights into a fresh
// model with a new classification head, and fine-tunes on the coarse
// (ImageNet-1K proxy) task under GLOBAL shuffling — the paper's protocol,
// where only the upstream stage varies by strategy and the question is
// whether the upstream accuracy gap survives fine-tuning.
#pragma once

#include "data/synthetic.hpp"
#include "sim/trainer.hpp"

namespace dshuf::sim {

struct TransferConfig {
  SimConfig upstream;
  SimConfig downstream;
  data::TrainRegime upstream_regime;
  data::TrainRegime downstream_regime;
  nn::MlpSpec trunk;  // num_classes is overridden per stage
};

struct TransferResult {
  SimResult upstream;
  SimResult downstream;
};

/// Copy all parameters except the classification head (the final Linear's
/// weight and bias) from `src` into `dst`. Shapes of the copied prefix
/// must match.
void copy_trunk(nn::Model& src, nn::Model& dst);

TransferResult run_transfer_experiment(const data::TaxonomyDatasets& data,
                                       const TransferConfig& config);

}  // namespace dshuf::sim
