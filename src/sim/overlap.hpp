// Overlapped multi-rank exchange driver — the measurement harness for the
// paper's "judge shuffling cost by what training can hide" claim.
//
// Each epoch, every rank runs the split-phase exchange
// (shuffle::PlsEpochExchange): post() fires the rank's coalesced frames —
// submitted to the task scheduler as a comm task when one is active — the
// rank then runs its compute phase under a "compute.batch" span, and
// finish() collects/reconciles once compute is done. The "exchange.epoch"
// span therefore brackets the whole in-flight window, and the dshuf_trace
// overlap report measures how much of it hid under compute.
//
// With `overlapped = false` the same epochs run the classic sequential
// schedule (the entire exchange completes before compute starts) — the
// baseline arm of bench_overlap. Both schedules, and any fault plan the
// robust protocol survives, produce shards governed by the same
// conservation invariants as the chaos harness; tests/test_overlap.cpp
// asserts overlapped == sequential == PartialLocalShuffler bit-for-bit on
// a perfect fabric.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "comm/fault.hpp"
#include "shuffle/mpi_exchange.hpp"

namespace dshuf::sim {

/// Per-rank compute phase invoked between post() and finish(). Runs on the
/// rank's thread (it may itself use the task scheduler, e.g. parallel
/// GEMM); receives (rank, epoch).
using ComputeFn = std::function<void(int rank, std::size_t epoch)>;

struct OverlapConfig {
  std::size_t n = 256;    ///< dataset size (dealt round-robin to ranks)
  int ranks = 4;
  double q = 0.3;         ///< exchange fraction
  std::size_t epochs = 4;
  std::uint64_t seed = 1;
  /// Split-phase overlapped schedule (true) or the sequential baseline
  /// where each epoch's exchange completes before its compute (false).
  bool overlapped = true;
  /// Compute phase; when empty, a deterministic GEMM burn of
  /// `compute_gemm_n`^3 x `compute_reps` stands in for a batch.
  ComputeFn compute;
  std::size_t compute_gemm_n = 160;
  std::size_t compute_reps = 4;
  /// Robust retry protocol; required when `faults` is set.
  std::optional<shuffle::ExchangeRobustness> robust;
  /// Fault plan injected into the World (chaos-under-overlap).
  std::optional<comm::FaultSpec> faults;
  std::uint64_t fault_seed = 1;
};

struct OverlapResult {
  std::vector<std::vector<shuffle::SampleId>> shards;  ///< final, [rank]
  std::vector<std::vector<shuffle::ExchangeOutcome>> outcomes;  ///< [epoch][rank]
  std::vector<std::size_t> quota_per_epoch;
};

/// Run `cfg.epochs` overlapped (or baseline) exchange+compute epochs over
/// an in-process World, including the post-exchange local shuffle. Always
/// runs the coalesced wire (the split-phase exchange's wire).
OverlapResult run_overlapped_epochs(const OverlapConfig& cfg);

}  // namespace dshuf::sim
