// Synchronous-SGD distributed training simulator.
//
// Executes M virtual workers against one shared model. Each iteration,
// every worker runs forward/backward on its own local minibatch (so
// BatchNorm statistics are per-worker, exactly like unsynchronised BN in
// DDP), the accumulated gradient is divided by M (the gradient-averaging
// allreduce), and one optimiser step is applied. Because synchronous SGD
// is barrier-deterministic, this sequential execution computes exactly
// what an M-rank data-parallel run of the same seeds would compute —
// which is what lets a single core stand in for the paper's 2,048-GPU
// experiments (accuracy-wise; wall-clock is dshuf::perf's job).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/partition.hpp"
#include "data/workloads.hpp"
#include "nn/builder.hpp"
#include "nn/optimizer.hpp"
#include "shuffle/hierarchical.hpp"
#include "shuffle/shuffler.hpp"

namespace dshuf::sim {

struct SimConfig {
  std::size_t workers = 8;
  std::size_t local_batch = 32;
  shuffle::Strategy strategy = shuffle::Strategy::kGlobal;
  double q = 0.1;
  /// Epoch count for run_workload_experiment; 0 = use the workload
  /// regime's epochs (train_model always follows the regime).
  std::size_t epochs = 0;
  data::PartitionScheme partition = data::PartitionScheme::kClassSorted;
  /// When > 0, use Dirichlet non-IID partitioning with this concentration
  /// instead of `partition` (small alpha = strong skew, large = near-iid).
  double dirichlet_alpha = 0.0;
  /// When > 0 and strategy is kPartial, use the hierarchical exchange
  /// (Section V-F) with this many groups instead of the flat plan.
  int hierarchical_groups = 0;
  /// Fraction of hierarchical rounds kept intra-group.
  double hierarchical_intra_fraction = 0.5;
  /// Exchange-pick policy (kPartial only). The importance policies feed an
  /// EMA of per-sample training loss to the shuffler each epoch — the
  /// Section IV-B importance-sampling extension.
  shuffle::PickPolicy pick_policy = shuffle::PickPolicy::kUniform;
  std::uint64_t seed = 123;
  /// Ablation: synchronise BatchNorm statistics across workers by running
  /// one fused global-batch forward/backward (mathematically identical
  /// gradient; batch stats become global).
  bool sync_batchnorm = false;
  /// Overlap each epoch's exchange with the PREVIOUS epoch's compute:
  /// epoch e+1's begin_epoch runs as a task-scheduler comm task while
  /// epoch e's forward/backward runs on this thread (the paper's "hide
  /// shuffling behind training" claim, measured by the dshuf_trace
  /// overlap report). Results are bit-identical to the sequential
  /// schedule: the exchange sequence is unchanged and the compute loop
  /// reads an order snapshot taken before the prefetch is posted. With no
  /// global scheduler (DSHUF_WORKERS=1) the prefetch runs inline before
  /// the compute span — same results, honestly ~0 overlap in the trace.
  /// Ignored (forced off) for importance pick policies, which need epoch
  /// e's losses before epoch e+1's exchange may start.
  bool overlap_exchange = false;
  /// Evaluate every k epochs (always evaluates the last epoch).
  std::size_t eval_every = 1;
  /// Cap on validation samples per evaluation (0 = all). Subsampling uses
  /// a fixed random subset so curves are comparable across strategies.
  std::size_t max_eval_samples = 4096;
  /// Optional warm-start weights (Fig. 5(d) pre-trained regime).
  std::optional<std::vector<float>> warm_start;
};

struct EpochRecord {
  std::size_t epoch = 0;
  double train_loss = 0;
  double val_top1 = -1;  // -1 = not evaluated this epoch
  float lr = 0;
  std::size_t samples_exchanged = 0;  // total across workers
};

struct SimResult {
  std::string label;        // e.g. "partial-0.3"
  std::size_t workers = 0;
  std::vector<EpochRecord> epochs;
  double best_top1 = 0;
  double final_top1 = 0;
  /// Peak shard occupancy / shard size across workers (storage bound).
  double peak_storage_ratio = 1.0;
};

/// Runs one (strategy, scale) training experiment for a registry workload.
/// The model/dataset are built from the workload spec; the same seeds are
/// used for weight init and data generation regardless of strategy, so
/// curves are directly comparable (the paper's controlled comparison).
SimResult run_workload_experiment(const data::Workload& workload,
                                  const SimConfig& config);

/// Lower-level entry point used by tests and the transfer experiment:
/// train `model` on the given data under `config` / `regime`.
SimResult train_model(nn::Model& model, const data::InMemoryDataset& train,
                      const data::InMemoryDataset& val,
                      const data::TrainRegime& regime,
                      const SimConfig& config, const std::string& label_hint);

/// Evaluate top-1 accuracy of `model` on (a fixed subsample of) `val`.
double evaluate(nn::Model& model, const data::InMemoryDataset& val,
                std::size_t max_samples, std::uint64_t seed);

}  // namespace dshuf::sim
