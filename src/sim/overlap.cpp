#include "sim/overlap.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "comm/comm.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "shuffle/exchange_wire.hpp"
#include "shuffle/shuffler.hpp"
#include "task/scheduler.hpp"
#include "tensor/gemm_kernel.hpp"
#include "util/error.hpp"

namespace dshuf::sim {

namespace {

std::vector<std::vector<shuffle::SampleId>> deal_shards(std::size_t n,
                                                        int ranks) {
  std::vector<std::vector<shuffle::SampleId>> shards(
      static_cast<std::size_t>(ranks));
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % static_cast<std::size_t>(ranks)].push_back(
        static_cast<shuffle::SampleId>(i));
  }
  return shards;
}

/// Deterministic GEMM burn standing in for a batch's forward/backward.
/// Inputs are a fixed function of (rank, size) so the work — and, with a
/// scheduler, the parallel_for it fans out — is reproducible.
void gemm_burn(std::size_t n, std::size_t reps, int rank) {
  std::vector<float> a(n * n);
  std::vector<float> bmat(n * n);
  std::vector<float> c(n * n, 0.0F);
  const auto r = static_cast<std::size_t>(rank);
  for (std::size_t i = 0; i < n * n; ++i) {
    a[i] = static_cast<float>((i * 31U + r) % 17U) * 0.25F - 2.0F;
    bmat[i] = static_cast<float>((i * 7U + 3U * r) % 13U) * 0.125F - 0.75F;
  }
  for (std::size_t rep = 0; rep < reps; ++rep) {
    kernel::gemm_blocked(a.data(), bmat.data(), c.data(), n, n, n,
                         /*a_transposed=*/false, /*b_transposed=*/false,
                         /*accumulate=*/rep > 0);
  }
  DSHUF_CHECK(n == 0 || std::isfinite(c[0]), "gemm burn diverged");
}

}  // namespace

OverlapResult run_overlapped_epochs(const OverlapConfig& cfg) {
  DSHUF_CHECK_GT(cfg.ranks, 0, "need at least one rank");
  DSHUF_CHECK(!cfg.faults.has_value() || cfg.robust.has_value(),
              "fault injection requires the robust protocol");

  auto shards = deal_shards(cfg.n, cfg.ranks);
  std::size_t min_shard = shards.empty() ? 0 : shards[0].size();
  for (const auto& s : shards) min_shard = std::min(min_shard, s.size());
  const std::size_t quota0 = shuffle::exchange_quota(min_shard, cfg.q);
  std::vector<shuffle::ShardStore> stores;
  stores.reserve(shards.size());
  for (auto& s : shards) {
    // Unlimited capacity under faults: drops let shard sizes drift beyond
    // the fault-free (1+Q) bound across epochs.
    const std::size_t cap = cfg.faults ? 0 : s.size() + quota0;
    stores.emplace_back(std::move(s), cap);
  }

  // The split-phase exchange is coalesced-wire only; set BEFORE World::run
  // (rank threads read the process-wide mode).
  shuffle::ScopedExchangeWire wire_mode(shuffle::ExchangeWire::kCoalesced);
  comm::World world(cfg.ranks);
  if (cfg.faults) {
    world.set_fault_plan(comm::FaultPlan(cfg.fault_seed, *cfg.faults));
  }
  const shuffle::ExchangeRobustness* robust =
      cfg.robust ? &*cfg.robust : nullptr;
  std::vector<shuffle::ExchangeScratch> scratch(stores.size());

  OverlapResult result;
  result.outcomes.resize(cfg.epochs);
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::size_t global_min = stores[0].size();
    for (const auto& s : stores) global_min = std::min(global_min, s.size());
    result.quota_per_epoch.push_back(
        shuffle::exchange_quota(global_min, cfg.q));

    std::vector<shuffle::ExchangeOutcome> per_rank(stores.size());
    world.run([&](comm::Communicator& c) {
      const auto r = static_cast<std::size_t>(c.rank());
      auto& store = stores[r];
      auto compute = [&] {
        obs::SpanGuard span("compute.batch",
                            {{"epoch", std::to_string(epoch)},
                             {"rank", std::to_string(c.rank())}});
        if (cfg.compute) {
          cfg.compute(c.rank(), epoch);
        } else {
          gemm_burn(cfg.compute_gemm_n, cfg.compute_reps, c.rank());
        }
      };
      if (cfg.overlapped) {
        shuffle::PlsEpochExchange exchange(c, store, cfg.seed, epoch, cfg.q,
                                           global_min, nullptr, nullptr,
                                           robust, &scratch[r]);
        // Post as a comm task when a scheduler is active, so frame packing
        // itself moves off the rank's critical path; inline otherwise
        // (the isends are asynchronous either way).
        task::Scheduler* const sched = task::global_scheduler();
        auto post_body = [&exchange] { exchange.post(); };
        task::ClosureTask<decltype(post_body)> post_task(post_body);
        task::TaskGroup group;
        if (sched != nullptr) {
          sched->submit(&post_task, group);
        } else {
          exchange.post();
        }
        compute();
        if (sched != nullptr) sched->wait(group);
        per_rank[r] = exchange.finish();
      } else {
        // Sequential baseline: the whole exchange (and its span) finishes
        // before compute starts — zero overlap by construction.
        per_rank[r] = shuffle::run_pls_exchange_epoch(
            c, store, cfg.seed, epoch, cfg.q, global_min, nullptr, nullptr,
            robust, &scratch[r]);
        compute();
      }
      shuffle::post_exchange_local_shuffle(cfg.seed, epoch, c.rank(),
                                           store.mutable_ids());
    });
    result.outcomes[epoch] = std::move(per_rank);
    // One telemetry window per epoch (no-op unless the sampler is on).
    obs::tick_timeseries_epoch(epoch);
  }

  for (auto& s : stores) result.shards.push_back(s.ids());
  return result;
}

}  // namespace dshuf::sim
