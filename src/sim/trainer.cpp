#include "sim/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "task/scheduler.hpp"
#include "util/log.hpp"

namespace dshuf::sim {

double evaluate(nn::Model& model, const data::InMemoryDataset& val,
                std::size_t max_samples, std::uint64_t seed) {
  DSHUF_CHECK_GT(val.size(), 0U, "empty validation set");
  std::vector<data::SampleId> ids(val.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<data::SampleId>(i);
  }
  if (max_samples > 0 && max_samples < ids.size()) {
    Rng rng(seed);
    rng.shuffle(ids);
    ids.resize(max_samples);
  }
  nn::AccuracyMeter meter;
  constexpr std::size_t kChunk = 512;
  Tensor xbuf;
  std::vector<std::uint32_t> ybuf;
  for (std::size_t off = 0; off < ids.size(); off += kChunk) {
    const std::size_t n = std::min(kChunk, ids.size() - off);
    const std::span<const data::SampleId> chunk(ids.data() + off, n);
    val.gather_into(chunk, xbuf);
    val.gather_labels_into(chunk, ybuf);
    const Tensor& logits = model.forward(xbuf, /*training=*/false);
    meter.update(logits, ybuf);
  }
  return meter.value();
}

SimResult train_model(nn::Model& model, const data::InMemoryDataset& train,
                      const data::InMemoryDataset& val,
                      const data::TrainRegime& regime,
                      const SimConfig& config, const std::string& label_hint) {
  DSHUF_CHECK_GT(config.workers, 0U, "need at least one worker");
  DSHUF_CHECK_GT(config.local_batch, 1U,
                 "BatchNorm training needs local batch > 1");
  const std::size_t M = config.workers;
  const std::size_t b = config.local_batch;

  if (config.warm_start) model.load_state(*config.warm_start);

  // Initial partition (the paper's Fig. 2 permutation-as-partition).
  Rng part_rng = Rng(config.seed).fork(0x90);
  auto shards =
      config.dirichlet_alpha > 0.0
          ? data::partition_dataset_dirichlet(train, M,
                                              config.dirichlet_alpha,
                                              part_rng)
          : data::partition_dataset(train, M, config.partition, part_rng);
  std::unique_ptr<shuffle::Shuffler> shuffler;
  if (config.strategy == shuffle::Strategy::kPartial &&
      config.hierarchical_groups > 0) {
    shuffler = std::make_unique<shuffle::HierarchicalPartialShuffler>(
        std::move(shards), config.q, config.hierarchical_groups, config.seed,
        config.hierarchical_intra_fraction);
  } else {
    shuffler = shuffle::make_shuffler(config.strategy, config.q,
                                      train.size(), std::move(shards),
                                      config.seed);
  }

  // Linear LR scaling with warmup (Goyal et al.), LARS at large scale.
  const auto global_batch = static_cast<double>(M * b);
  const float scaled_lr =
      regime.base_lr *
      static_cast<float>(global_batch /
                         static_cast<double>(regime.reference_batch));
  nn::MultiStepLr schedule(scaled_lr, regime.milestones, 0.1F,
                           regime.warmup_epochs);

  nn::SgdConfig opt_cfg;
  opt_cfg.lr = schedule.lr_at(0.0);
  opt_cfg.momentum = regime.momentum;
  opt_cfg.weight_decay = regime.weight_decay;
  if (regime.lars_above_workers > 0 && M > regime.lars_above_workers) {
    opt_cfg.lars_trust = regime.lars_trust;
  }
  nn::Sgd opt(model, opt_cfg);
  nn::SoftmaxCrossEntropy ce;

  // Importance-pick support: EMA of per-sample loss, fed to the partial
  // shuffler before each epoch's exchange.
  auto* pls = dynamic_cast<shuffle::PartialLocalShuffler*>(shuffler.get());
  const bool track_losses =
      pls != nullptr && config.pick_policy != shuffle::PickPolicy::kUniform;
  if (track_losses) pls->set_pick_policy(config.pick_policy);
  std::vector<float> ema_loss(track_losses ? train.size() : 0, 0.0F);
  auto update_ema = [&](std::span<const data::SampleId> ids,
                        const std::vector<float>& losses) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      float& e = ema_loss[ids[i]];
      e = e == 0.0F ? losses[i] : 0.5F * e + 0.5F * losses[i];
    }
  };

  SimResult result;
  result.label = label_hint.empty() ? shuffler->label() : label_hint;
  result.workers = M;

  // Exchange/compute overlap (see SimConfig::overlap_exchange). Off, the
  // loop below runs the classic sequential schedule: begin_epoch(e), then
  // epoch e's compute. On, epoch e+1's begin_epoch is prefetched while
  // epoch e computes: the compute loop reads order snapshots taken before
  // the prefetch is posted, and each epoch's exchange stats are captured
  // right after its begin_epoch (before the next one clobbers
  // last_stats()). The begin_epoch call sequence is identical either way,
  // so both schedules produce bit-identical models and records.
  task::Scheduler* const sched = task::global_scheduler();
  const bool overlap = config.overlap_exchange && !track_losses;
  struct ExchInfo {
    std::size_t samples_exchanged = 0;
    double peak_ratio = 1.0;
    bool have_stats = false;
  };
  auto capture_exchange = [&]() {
    ExchInfo info;
    const auto* stats = shuffler->last_stats();
    if (stats == nullptr) return info;
    info.have_stats = true;
    info.samples_exchanged = stats->total_sent();
    for (std::size_t w = 0; w < stats->peak_occupancy_per_worker.size();
         ++w) {
      const auto shard_sz = shuffler->local_order(static_cast<int>(w)).size();
      if (shard_sz > 0) {
        info.peak_ratio = std::max(
            info.peak_ratio,
            static_cast<double>(stats->peak_occupancy_per_worker[w]) /
                static_cast<double>(shard_sz));
      }
    }
    return info;
  };
  std::vector<std::vector<data::SampleId>> order_snap(overlap ? M : 0);
  auto snapshot_orders = [&] {
    for (std::size_t w = 0; w < order_snap.size(); ++w) {
      const auto& order = shuffler->local_order(static_cast<int>(w));
      order_snap[w].assign(order.begin(), order.end());
    }
  };
  auto order_of = [&](std::size_t w) -> const std::vector<data::SampleId>& {
    return overlap ? order_snap[w]
                   : shuffler->local_order(static_cast<int>(w));
  };

  ExchInfo cur_info;
  ExchInfo next_info;
  if (overlap) {
    // Epoch 0's exchange has no earlier compute to hide under.
    {
      DSHUF_SPAN("sim.epoch.shuffle", {{"epoch", "0"}});
      shuffler->begin_epoch(0);
    }
    cur_info = capture_exchange();
    snapshot_orders();
  }

  for (std::size_t epoch = 0; epoch < regime.epochs; ++epoch) {
    obs::SpanGuard epoch_span("sim.epoch",
                              {{"epoch", std::to_string(epoch)}});
    if (!overlap) {
      if (track_losses && epoch > 0) pls->set_sample_scores(ema_loss);
      {
        DSHUF_SPAN("sim.epoch.shuffle", {{"epoch", std::to_string(epoch)}});
        shuffler->begin_epoch(epoch);
      }
      cur_info = capture_exchange();
    }
    // Iterations per epoch: every worker must have a full batch each
    // iteration (drop-last semantics, as PyTorch's DistributedSampler +
    // DataLoader(drop_last=True)).
    std::size_t min_order = SIZE_MAX;
    for (std::size_t w = 0; w < M; ++w) {
      min_order = std::min(min_order, order_of(w).size());
    }
    const std::size_t iters = min_order / b;
    DSHUF_CHECK_GT(iters, 0U,
                   "shards too small for the batch size (shard "
                       << order_of(0).size() << ", batch " << b << ")");

    // Prefetch epoch e+1's exchange. With a scheduler it is posted right
    // after the compute span opens and waited right after it closes, so
    // the trace records the true in-flight window; without one it runs
    // inline BEFORE the compute span — same results, honestly zero
    // overlap in the trace.
    const bool prefetch = overlap && epoch + 1 < regime.epochs;
    auto prefetch_body = [&, next_epoch = epoch + 1] {
      obs::SpanGuard span("exchange.task",
                          {{"epoch", std::to_string(next_epoch)}});
      shuffler->begin_epoch(next_epoch);
      next_info = capture_exchange();
    };
    task::ClosureTask<decltype(prefetch_body)> prefetch_task(prefetch_body);
    task::TaskGroup prefetch_group;
    if (prefetch && sched == nullptr) prefetch_body();

    obs::SpanGuard compute_span("sim.epoch.compute",
                                {{"epoch", std::to_string(epoch)}});
    if (prefetch && sched != nullptr) {
      sched->submit(&prefetch_task, prefetch_group);
    }
    double loss_sum = 0;
    std::size_t loss_count = 0;
    // Batch staging buffers live outside the loops: after the first
    // iteration every gather reuses their capacity, so the steady state
    // of the training loop is allocation-free.
    Tensor xbuf;
    std::vector<std::uint32_t> ybuf;
    std::vector<data::SampleId> fused;
    for (std::size_t it = 0; it < iters; ++it) {
      const double frac_epoch =
          static_cast<double>(epoch) +
          static_cast<double>(it) / static_cast<double>(iters);
      opt.set_lr(schedule.lr_at(frac_epoch));
      model.zero_grad();

      if (config.sync_batchnorm) {
        // Fused global batch: identical averaged gradient, global batch
        // statistics (the paper's suggested BN remedy, Section IV-A-1).
        fused.clear();
        fused.reserve(M * b);
        for (std::size_t w = 0; w < M; ++w) {
          const auto& order = order_of(w);
          fused.insert(fused.end(), order.begin() + static_cast<std::ptrdiff_t>(it * b),
                       order.begin() + static_cast<std::ptrdiff_t>((it + 1) * b));
        }
        train.gather_into(fused, xbuf);
        train.gather_labels_into(fused, ybuf);
        const Tensor& logits = model.forward(xbuf, /*training=*/true);
        loss_sum += ce.forward(logits, ybuf);
        ++loss_count;
        if (track_losses) update_ema(fused, ce.per_sample_losses());
        model.backward(ce.grad());
        // Mean over the fused M*b batch == average of per-worker means.
      } else {
        for (std::size_t w = 0; w < M; ++w) {
          const auto& order = order_of(w);
          const std::span<const data::SampleId> batch(order.data() + it * b,
                                                      b);
          train.gather_into(batch, xbuf);
          train.gather_labels_into(batch, ybuf);
          const Tensor& logits = model.forward(xbuf, /*training=*/true);
          loss_sum += ce.forward(logits, ybuf);
          ++loss_count;
          if (track_losses) update_ema(batch, ce.per_sample_losses());
          model.backward(ce.grad());
        }
        // Gradient-averaging allreduce.
        model.scale_grad(1.0F / static_cast<float>(M));
      }
      opt.step();
    }
    compute_span.finish();
    if (prefetch && sched != nullptr) sched->wait(prefetch_group);
    DSHUF_GAUGE("nn.workspace.bytes")
        .set(static_cast<std::int64_t>(model.workspace().bytes_reserved()));

    EpochRecord rec;
    rec.epoch = epoch;
    rec.train_loss = loss_sum / static_cast<double>(std::max<std::size_t>(
                                    1, loss_count));
    rec.lr = opt.lr();
    if (cur_info.have_stats) {
      rec.samples_exchanged = cur_info.samples_exchanged;
      DSHUF_COUNTER("sim.samples_exchanged").add(rec.samples_exchanged);
      result.peak_storage_ratio =
          std::max(result.peak_storage_ratio, cur_info.peak_ratio);
    }
    const bool eval_now = (epoch % std::max<std::size_t>(1, config.eval_every)
                           == 0) ||
                          epoch + 1 == regime.epochs;
    if (eval_now && val.size() > 0) {
      DSHUF_SPAN("sim.epoch.eval", {{"epoch", std::to_string(epoch)}});
      rec.val_top1 =
          evaluate(model, val, config.max_eval_samples, config.seed ^ 0xEF);
      result.best_top1 = std::max(result.best_top1, rec.val_top1);
      result.final_top1 = rec.val_top1;
    }
    result.epochs.push_back(rec);
    // One telemetry window per epoch (no-op unless the sampler is on).
    obs::tick_timeseries_epoch(epoch);
    LOG_DEBUG << result.label << " epoch " << epoch << " loss "
              << rec.train_loss << " top1 " << rec.val_top1;
    if (prefetch) {
      cur_info = next_info;
      snapshot_orders();
    }
  }
  return result;
}

SimResult run_workload_experiment(const data::Workload& workload,
                                  const SimConfig& config) {
  auto split = data::make_class_clusters_split(workload.data);
  Rng model_rng = Rng(config.seed).fork(0x91);
  nn::Model model = nn::make_mlp(workload.model, model_rng);
  data::TrainRegime regime = workload.regime;
  if (config.epochs > 0) regime.epochs = config.epochs;
  return train_model(model, split.train, split.val, regime, config,
                     shuffle::strategy_label(config.strategy, config.q));
}

}  // namespace dshuf::sim
