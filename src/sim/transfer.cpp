#include "sim/transfer.hpp"

namespace dshuf::sim {

void copy_trunk(nn::Model& src, nn::Model& dst) {
  auto src_params = src.params();
  auto dst_params = dst.params();
  DSHUF_CHECK_EQ(src_params.size(), dst_params.size(),
                 "trunk transfer requires architecturally equal models");
  DSHUF_CHECK_GE(src_params.size(), 2U, "model has no head to exclude");
  // The head is the final Linear: its weight and bias are the last two
  // parameters in layer order.
  const std::size_t trunk_count = src_params.size() - 2;
  for (std::size_t i = 0; i < trunk_count; ++i) {
    DSHUF_CHECK_EQ(src_params[i]->value.size(), dst_params[i]->value.size(),
                   "trunk parameter " << i << " shape mismatch");
    dst_params[i]->value = src_params[i]->value;
  }
}

TransferResult run_transfer_experiment(const data::TaxonomyDatasets& data,
                                       const TransferConfig& config) {
  TransferResult out;

  // Upstream: fine-label pretraining under the configured strategy.
  nn::MlpSpec up_spec = config.trunk;
  up_spec.num_classes = data.fine_classes;
  Rng up_rng = Rng(config.upstream.seed).fork(0x92);
  nn::Model up_model = nn::make_mlp(up_spec, up_rng);
  out.upstream = train_model(
      up_model, data.upstream.train, data.upstream.val,
      config.upstream_regime, config.upstream,
      "up-" + shuffle::strategy_label(config.upstream.strategy,
                                      config.upstream.q));

  // Downstream: coarse-label fine-tuning from the transplanted trunk,
  // always under global shuffling (the paper varies only the upstream).
  nn::MlpSpec down_spec = config.trunk;
  down_spec.num_classes = data.coarse_classes;
  Rng down_rng = Rng(config.downstream.seed).fork(0x93);
  nn::Model down_model = nn::make_mlp(down_spec, down_rng);
  copy_trunk(up_model, down_model);
  out.downstream = train_model(
      down_model, data.downstream.train, data.downstream.val,
      config.downstream_regime, config.downstream,
      "down-after-" + out.upstream.label);
  return out;
}

}  // namespace dshuf::sim
