#include "shuffle/shard_store.hpp"

#include "shuffle/exchange_plan.hpp"

namespace dshuf::shuffle {

namespace {

// The index maps id -> (first occurrence << 32) | live count.
std::uint64_t pack_entry(std::size_t first, std::uint32_t count) {
  return (static_cast<std::uint64_t>(first) << 32) | count;
}
std::uint32_t entry_first(std::uint64_t v) {
  return static_cast<std::uint32_t>(v >> 32);
}
std::uint32_t entry_count(std::uint64_t v) {
  return static_cast<std::uint32_t>(v);
}

}  // namespace

ShardStore::ShardStore(std::vector<SampleId> initial, std::size_t capacity)
    : ids_(std::move(initial)), capacity_(capacity), peak_(ids_.size()) {
  DSHUF_CHECK(capacity_ == 0 || ids_.size() <= capacity_,
              "initial shard exceeds capacity");
}

void ShardStore::add(SampleId id) {
  ids_.push_back(id);
  if (!index_dirty_) index_add(id, ids_.size() - 1);
  note_occupancy();
}

void ShardStore::remove_slot(std::size_t slot) {
  DSHUF_CHECK_LT(slot, ids_.size(), "remove_slot out of range");
  ensure_index();
  remove_at(slot);
}

void ShardStore::remove_id(SampleId id) {
  ensure_index();
  std::uint64_t v = 0;
  DSHUF_CHECK(index_->find(id, v), "remove_id: sample " << id << " not held");
  remove_at(entry_first(v));
}

void ShardStore::index_add(SampleId id, std::size_t pos) {
  std::uint64_t v = 0;
  if (index_->find(id, v)) {
    // Duplicate copy appended at `pos` > first — first is unchanged,
    // count lives in the low word.
    index_->put(id, v + 1);
  } else {
    index_->put(id, pack_entry(pos, 1));
  }
}

void ShardStore::remove_at(std::size_t j) {
  const SampleId id = ids_[j];
  const std::size_t last_idx = ids_.size() - 1;
  const SampleId last = ids_[last_idx];

  std::uint64_t v = 0;
  DSHUF_CHECK(index_->find(id, v), "removal index lost sample " << id);
  std::uint32_t first = entry_first(v);
  const std::uint32_t count = entry_count(v) - 1;
  const bool was_first = first == j;

  // Identical observable mutation to the scan-based removal: overwrite the
  // removed slot with the last element, shrink by one.
  ids_[j] = last;
  ids_.pop_back();

  if (count == 0) {
    index_->erase(id);
  } else {
    if (was_first) {
      // Remaining copies all sat past j (j WAS the first) — and the moved
      // last element may itself be another copy of id, now at j. The next
      // occurrence at/after j is the new first.
      std::size_t k = j;
      while (k < ids_.size() && ids_[k] != id) ++k;
      DSHUF_CHECK_LT(k, ids_.size(), "removal index count out of sync");
      first = static_cast<std::uint32_t>(k);
    }
    index_->put(id, pack_entry(first, count));
  }

  if (j != last_idx && last != id) {
    std::uint64_t lv = 0;
    DSHUF_CHECK(index_->find(last, lv), "removal index lost sample " << last);
    // The copy that lived at last_idx now lives at j; if that beats the
    // recorded first occurrence (including when it WAS the first), track
    // it. Copies strictly before j are unaffected.
    if (j < entry_first(lv)) {
      index_->put(last, pack_entry(j, entry_count(lv)));
    }
  }
}

void ShardStore::ensure_index() {
  // A ScopedSlotIndex switch takes effect at the next lazy rebuild: the
  // backend is replaced, not mutated mid-schedule.
  const io::SlotIndexKind want = io::slot_index_kind();
  if (index_ == nullptr || index_->kind() != want) {
    index_ = io::make_slot_index(want);
    index_dirty_ = true;
  }
  if (!index_dirty_) return;
  // Steady state: clear() retains backend capacity — no allocation.
  index_->clear();
  index_dirty_ = false;
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    // Ascending i, so the first insert of each id records its first
    // occurrence and duplicates only bump the count.
    index_add(ids_[i], i);
  }
}

std::size_t pls_capacity(std::size_t shard_size, double q) {
  return shard_size + exchange_quota(shard_size, q);
}

}  // namespace dshuf::shuffle
