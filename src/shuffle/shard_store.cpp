#include "shuffle/shard_store.hpp"

#include <algorithm>

#include "shuffle/exchange_plan.hpp"

namespace dshuf::shuffle {

namespace {

// splitmix32 finaliser — cheap, well-mixed hash for dense or sparse ids.
std::uint32_t hash_id(SampleId id) {
  std::uint32_t x = id;
  x ^= x >> 16;
  x *= 0x7FEB352DU;
  x ^= x >> 15;
  x *= 0x846CA68BU;
  x ^= x >> 16;
  return x;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 16;
  while (p < n) p *= 2;
  return p;
}

}  // namespace

ShardStore::ShardStore(std::vector<SampleId> initial, std::size_t capacity)
    : ids_(std::move(initial)), capacity_(capacity), peak_(ids_.size()) {
  DSHUF_CHECK(capacity_ == 0 || ids_.size() <= capacity_,
              "initial shard exceeds capacity");
}

void ShardStore::add(SampleId id) {
  ids_.push_back(id);
  if (!index_dirty_) index_add(id, ids_.size() - 1);
  note_occupancy();
}

void ShardStore::remove_slot(std::size_t slot) {
  DSHUF_CHECK_LT(slot, ids_.size(), "remove_slot out of range");
  ensure_index();
  remove_at(slot);
}

void ShardStore::remove_id(SampleId id) {
  ensure_index();
  IndexEntry* e = find_entry(id);
  DSHUF_CHECK(e != nullptr, "remove_id: sample " << id << " not held");
  remove_at(e->first);
}

ShardStore::IndexEntry* ShardStore::find_entry(SampleId id) {
  if (index_.empty()) return nullptr;
  const std::size_t mask = index_.size() - 1;
  std::size_t slot = hash_id(id) & mask;
  while (index_[slot].state != kEmpty) {
    if (index_[slot].state == kUsed && index_[slot].id == id) {
      return &index_[slot];
    }
    slot = (slot + 1) & mask;
  }
  return nullptr;
}

void ShardStore::index_add(SampleId id, std::size_t pos) {
  // Grow before probing so the 3/4 load bound (used + tombstones) holds;
  // rehashing also sweeps tombstones out.
  if (4 * (index_used_ + index_tombstones_ + 1) >= 3 * index_.size()) {
    rehash(2 * (index_used_ + 1));
  }
  const std::size_t mask = index_.size() - 1;
  std::size_t slot = hash_id(id) & mask;
  std::size_t insert_at = index_.size();  // first reusable tombstone
  while (index_[slot].state != kEmpty) {
    if (index_[slot].state == kUsed && index_[slot].id == id) {
      // Duplicate copy appended at `pos` > first — first is unchanged.
      ++index_[slot].count;
      return;
    }
    if (index_[slot].state == kTombstone && insert_at == index_.size()) {
      insert_at = slot;
    }
    slot = (slot + 1) & mask;
  }
  if (insert_at == index_.size()) {
    insert_at = slot;
  } else {
    --index_tombstones_;
  }
  index_[insert_at] = IndexEntry{id, static_cast<std::uint32_t>(pos), 1,
                                 kUsed};
  ++index_used_;
}

void ShardStore::remove_at(std::size_t j) {
  const SampleId id = ids_[j];
  const std::size_t last_idx = ids_.size() - 1;
  const SampleId last = ids_[last_idx];

  IndexEntry* e = find_entry(id);
  DSHUF_CHECK(e != nullptr, "removal index lost sample " << id);
  const bool was_first = e->first == j;
  --e->count;

  // Identical observable mutation to the scan-based removal: overwrite the
  // removed slot with the last element, shrink by one.
  ids_[j] = last;
  ids_.pop_back();

  if (e->count == 0) {
    e->state = kTombstone;
    --index_used_;
    ++index_tombstones_;
  } else if (was_first) {
    // Remaining copies all sat past j (j WAS the first) — and the moved
    // last element may itself be another copy of id, now at j. The next
    // occurrence at/after j is the new first.
    std::size_t k = j;
    while (k < ids_.size() && ids_[k] != id) ++k;
    DSHUF_CHECK_LT(k, ids_.size(), "removal index count out of sync");
    e->first = static_cast<std::uint32_t>(k);
  }

  if (j != last_idx && last != id) {
    IndexEntry* le = find_entry(last);
    DSHUF_CHECK(le != nullptr, "removal index lost sample " << last);
    // The copy that lived at last_idx now lives at j; if that beats the
    // recorded first occurrence (including when it WAS the first), track
    // it. Copies strictly before j are unaffected.
    if (j < le->first) le->first = static_cast<std::uint32_t>(j);
  }
}

void ShardStore::ensure_index() {
  if (!index_dirty_) return;
  const std::size_t needed = next_pow2(2 * ids_.size());
  if (index_.size() < needed) {
    index_.assign(needed, IndexEntry{});
  } else {
    // Steady state: same table, wiped in place — no allocation.
    std::fill(index_.begin(), index_.end(), IndexEntry{});
  }
  index_used_ = 0;
  index_tombstones_ = 0;
  index_dirty_ = false;
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    // Ascending i, so the first insert of each id records its first
    // occurrence and duplicates only bump the count.
    index_add(ids_[i], i);
  }
}

void ShardStore::rehash(std::size_t min_slots) {
  const std::size_t size = next_pow2(min_slots * 2);
  std::vector<IndexEntry> old = std::move(index_);
  index_.assign(size, IndexEntry{});
  index_used_ = 0;
  index_tombstones_ = 0;
  const std::size_t mask = index_.size() - 1;
  for (const IndexEntry& e : old) {
    if (e.state != kUsed) continue;
    std::size_t slot = hash_id(e.id) & mask;
    while (index_[slot].state != kEmpty) slot = (slot + 1) & mask;
    index_[slot] = e;
    ++index_used_;
  }
}

std::size_t pls_capacity(std::size_t shard_size, double q) {
  return shard_size + exchange_quota(shard_size, q);
}

}  // namespace dshuf::shuffle
