#include "shuffle/shard_store.hpp"

#include <algorithm>

#include "shuffle/exchange_plan.hpp"

namespace dshuf::shuffle {

ShardStore::ShardStore(std::vector<SampleId> initial, std::size_t capacity)
    : ids_(std::move(initial)), capacity_(capacity), peak_(ids_.size()) {
  DSHUF_CHECK(capacity_ == 0 || ids_.size() <= capacity_,
              "initial shard exceeds capacity");
}

void ShardStore::add(SampleId id) {
  ids_.push_back(id);
  note_occupancy();
}

void ShardStore::remove_slot(std::size_t slot) {
  DSHUF_CHECK_LT(slot, ids_.size(), "remove_slot out of range");
  ids_[slot] = ids_.back();
  ids_.pop_back();
}

void ShardStore::remove_id(SampleId id) {
  auto it = std::find(ids_.begin(), ids_.end(), id);
  DSHUF_CHECK(it != ids_.end(), "remove_id: sample " << id << " not held");
  *it = ids_.back();
  ids_.pop_back();
}

std::size_t pls_capacity(std::size_t shard_size, double q) {
  return shard_size + exchange_quota(shard_size, q);
}

}  // namespace dshuf::shuffle
