// Glue between the PLS exchange's payload/deposit callbacks and an
// io::SampleStore.
//
// The exchange is storage-agnostic: PayloadFn appends a sample's bytes to
// the wire frame being packed, DepositFn hands a span into the received
// frame. These adapters wire both to a SampleStore so the two store
// implementations are drop-in interchangeable behind the exchange:
//
//   * payload: SampleStore::load_into APPENDS to the frame. On the
//     mmap-backed store that is a single memcpy from the mapped segment
//     into the frame under an epoch pin — no intermediate vector, no
//     allocation in steady state.
//   * deposit: SampleStore::save straight from the received frame's span —
//     on the mmap store one memcpy into the active segment's mapping.
//     Deposits may run from inside a SampleSource::read callback: both
//     stores honour the contract that the callback runs without the
//     store lock, so the reentrant save cannot deadlock.
//
// The store must outlive the returned std::function (captured by
// reference; the exchange object already outlives its epoch calls).
#pragma once

#include "io/storage.hpp"
#include "shuffle/mpi_exchange.hpp"

namespace dshuf::shuffle {

inline PayloadFn make_store_payload_fn(const io::SampleStore& store) {
  return [&store](SampleId id, std::vector<std::byte>& out) {
    store.load_into(id, out);
  };
}

inline DepositFn make_store_deposit_fn(io::SampleStore& store) {
  return [&store](SampleId id, std::span<const std::byte> body) {
    store.save(id, body);
  };
}

}  // namespace dshuf::shuffle
