#include "shuffle/shuffler.hpp"

#include "shuffle/uncontrolled.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace dshuf::shuffle {

std::string to_string(PickPolicy p) {
  switch (p) {
    case PickPolicy::kUniform:
      return "uniform";
    case PickPolicy::kHighLoss:
      return "high-loss";
    case PickPolicy::kLowLoss:
      return "low-loss";
  }
  return "?";
}

namespace {

// Stream tags for Rng::fork — distinct per purpose so streams never alias.
constexpr std::uint64_t kGlobalPermTag = 0x61;
constexpr std::uint64_t kLocalPermTag = 0x62;
constexpr std::uint64_t kPickTag = 0x63;
constexpr std::uint64_t kPostShuffleTag = 0x64;

}  // namespace

// ---------------------------------------------------------------- Global --

GlobalShuffler::GlobalShuffler(std::size_t dataset_size, int workers,
                               std::uint64_t seed)
    : dataset_size_(dataset_size),
      workers_(workers),
      base_rng_(seed),
      orders_(static_cast<std::size_t>(workers)) {
  DSHUF_CHECK_GT(workers, 0, "need at least one worker");
  DSHUF_CHECK_GE(dataset_size, static_cast<std::size_t>(workers),
                 "need at least one sample per worker");
}

void GlobalShuffler::begin_epoch(std::size_t epoch) {
  Rng rng = base_rng_.fork(kGlobalPermTag, epoch);
  const auto perm = rng.permutation(dataset_size_);
  const auto m = static_cast<std::size_t>(workers_);
  for (auto& o : orders_) o.clear();
  // Strided deal over the global permutation — PyTorch DistributedSampler.
  for (std::size_t i = 0; i < perm.size(); ++i) {
    orders_[i % m].push_back(perm[i]);
  }
}

const std::vector<SampleId>& GlobalShuffler::local_order(int worker) const {
  DSHUF_CHECK(worker >= 0 && worker < workers_, "worker out of range");
  return orders_[static_cast<std::size_t>(worker)];
}

// ----------------------------------------------------------------- Local --

LocalShuffler::LocalShuffler(std::vector<std::vector<SampleId>> shards,
                             std::uint64_t seed)
    : base_rng_(seed), orders_(std::move(shards)) {
  DSHUF_CHECK(!orders_.empty(), "need at least one shard");
}

void LocalShuffler::begin_epoch(std::size_t epoch) {
  for (std::size_t w = 0; w < orders_.size(); ++w) {
    Rng rng = base_rng_.fork(kLocalPermTag, epoch, w);
    rng.shuffle(orders_[w]);
  }
}

const std::vector<SampleId>& LocalShuffler::local_order(int worker) const {
  DSHUF_CHECK(worker >= 0 && worker < static_cast<int>(orders_.size()),
              "worker out of range");
  return orders_[static_cast<std::size_t>(worker)];
}

// --------------------------------------------------------------- Partial --

PartialLocalShuffler::PartialLocalShuffler(
    std::vector<std::vector<SampleId>> shards, double q, std::uint64_t seed,
    bool exchange_on_first_epoch)
    : q_(q),
      seed_(seed),
      exchange_on_first_epoch_(exchange_on_first_epoch),
      base_rng_(seed),
      orders_(shards.size()) {
  DSHUF_CHECK(!shards.empty(), "need at least one shard");
  DSHUF_CHECK(q >= 0.0 && q <= 1.0, "Q must be in [0, 1]");
  std::size_t min_shard = shards[0].size();
  for (const auto& s : shards) min_shard = std::min(min_shard, s.size());
  const std::size_t quota = exchange_quota(min_shard, q);
  stores_.reserve(shards.size());
  for (auto& s : shards) {
    const std::size_t cap = s.size() + quota;  // the (1+Q) * N/M bound
    stores_.emplace_back(std::move(s), cap);
  }
}

std::string PartialLocalShuffler::label() const {
  return strategy_label(Strategy::kPartial, q_);
}

void PartialLocalShuffler::begin_epoch(std::size_t epoch) {
  const auto m = stores_.size();
  std::size_t min_shard = stores_[0].size();
  for (const auto& s : stores_) min_shard = std::min(min_shard, s.size());
  const std::size_t quota = exchange_quota(min_shard, q_);

  stats_ = ExchangeStats{};
  stats_.epoch = epoch;
  stats_.sent_per_worker.assign(m, 0);
  stats_.received_per_worker.assign(m, 0);
  stats_.local_reads_per_worker.assign(m, 0);
  stats_.peak_occupancy_per_worker.assign(m, 0);

  const bool exchange =
      quota > 0 && m > 1 && (epoch > 0 || exchange_on_first_epoch_);

  if (exchange) {
    plan_ = std::make_unique<ExchangePlan>(seed_, epoch,
                                           static_cast<int>(m), quota);
    // Algorithm 1, line 1: every worker picks its outgoing samples (random
    // permutation prefix, or importance-ordered under the extension
    // policies) — resolve them all before mutating stores.
    std::vector<std::vector<SampleId>> outgoing(m);
    for (std::size_t w = 0; w < m; ++w) {
      stores_[w].reset_peak();
      outgoing[w] = select_outgoing(epoch, static_cast<int>(w), quota);
    }
    // Deliver round by round (this is what MPI messages carry), staging
    // received samples BEFORE the transmitted ones are cleaned up — the
    // Fig. 4 overlap means both coexist on storage, which is why the
    // capacity bound is (1+Q) * N/M.
    for (std::size_t i = 0; i < quota; ++i) {
      for (std::size_t w = 0; w < m; ++w) {
        const int d = plan_->dest(i, static_cast<int>(w));
        stores_[static_cast<std::size_t>(d)].add(outgoing[w][i]);
        ++stats_.received_per_worker[static_cast<std::size_t>(d)];
        ++stats_.sent_per_worker[w];
      }
    }
    // scheduler.clean_local_storage(): drop the transmitted samples.
    for (std::size_t w = 0; w < m; ++w) {
      for (SampleId id : outgoing[w]) stores_[w].remove_id(id);
    }
  } else {
    plan_.reset();
    for (auto& s : stores_) s.reset_peak();
  }

  // Final local shuffle of the (possibly updated) shard — in place, so the
  // next epoch's pick permutation draws from the shuffled order (the paper:
  // "a full shuffle of the local portion of the data is performed before
  // the designated ratio is exchanged"). Scheduler applies the identical
  // stream, which keeps the two drivers bit-compatible.
  for (std::size_t w = 0; w < m; ++w) {
    post_exchange_local_shuffle(seed_, epoch, static_cast<int>(w),
                                stores_[w].mutable_ids());
    orders_[w] = stores_[w].ids();
    stats_.local_reads_per_worker[w] =
        orders_[w].size() - stats_.received_per_worker[w];
    stats_.peak_occupancy_per_worker[w] = stores_[w].peak_occupancy();
  }
}

std::vector<SampleId> PartialLocalShuffler::select_outgoing(
    std::size_t epoch, int worker, std::size_t quota) const {
  const auto& store = stores_[static_cast<std::size_t>(worker)];
  const bool scored = pick_policy_ != PickPolicy::kUniform &&
                      !scores_.empty();
  std::vector<SampleId> out;
  out.reserve(quota);
  if (!scored) {
    const auto picks = pick_permutation(seed_, epoch, worker, store.size());
    for (std::size_t i = 0; i < quota; ++i) {
      out.push_back(store.ids()[picks[i]]);
    }
    return out;
  }
  // Importance policy: order the shard by score (ties by id for
  // determinism) and take the top/bottom quota.
  std::vector<SampleId> sorted = store.ids();
  auto score_of = [&](SampleId id) {
    return id < scores_.size() ? scores_[id] : 0.0F;
  };
  std::sort(sorted.begin(), sorted.end(), [&](SampleId a, SampleId b) {
    const float sa = score_of(a);
    const float sb = score_of(b);
    if (sa != sb) {
      return pick_policy_ == PickPolicy::kHighLoss ? sa > sb : sa < sb;
    }
    return a < b;
  });
  out.assign(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(
                                                  quota));
  return out;
}

const std::vector<SampleId>& PartialLocalShuffler::local_order(
    int worker) const {
  DSHUF_CHECK(worker >= 0 && worker < static_cast<int>(orders_.size()),
              "worker out of range");
  return orders_[static_cast<std::size_t>(worker)];
}

// --------------------------------------------------------------- Factory --

std::unique_ptr<Shuffler> make_shuffler(
    Strategy strategy, double q, std::size_t dataset_size,
    std::vector<std::vector<SampleId>> shards, std::uint64_t seed) {
  switch (strategy) {
    case Strategy::kGlobal:
      return std::make_unique<GlobalShuffler>(
          dataset_size, static_cast<int>(shards.size()), seed);
    case Strategy::kLocal:
      return std::make_unique<LocalShuffler>(std::move(shards), seed);
    case Strategy::kPartial:
      return std::make_unique<PartialLocalShuffler>(std::move(shards), q,
                                                    seed);
    case Strategy::kUncontrolled:
      return std::make_unique<UncontrolledShuffler>(std::move(shards), q,
                                                    seed);
  }
  DSHUF_CHECK(false, "unreachable strategy");
}

std::vector<std::uint32_t> pick_permutation(std::uint64_t seed,
                                            std::size_t epoch, int worker,
                                            std::size_t shard_size) {
  std::vector<std::uint32_t> out;
  pick_permutation_into(seed, epoch, worker, shard_size, out);
  return out;
}

void pick_permutation_into(std::uint64_t seed, std::size_t epoch, int worker,
                           std::size_t shard_size,
                           std::vector<std::uint32_t>& out) {
  Rng rng = Rng(seed).fork(kPickTag, epoch,
                           static_cast<std::uint64_t>(worker));
  rng.permutation_into(shard_size, out);
}

void post_exchange_local_shuffle(std::uint64_t seed, std::size_t epoch,
                                 int worker, std::vector<SampleId>& ids) {
  Rng rng = Rng(seed).fork(kPostShuffleTag, epoch,
                           static_cast<std::uint64_t>(worker));
  rng.shuffle(ids);
}

}  // namespace dshuf::shuffle
