#include "shuffle/uncontrolled.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/table.hpp"

namespace dshuf::shuffle {

UncontrolledShuffler::UncontrolledShuffler(
    std::vector<std::vector<SampleId>> shards, double q, std::uint64_t seed)
    : q_(q), seed_(seed), orders_(shards.size()) {
  DSHUF_CHECK(!shards.empty(), "need at least one shard");
  DSHUF_CHECK(q >= 0.0 && q <= 1.0, "Q must be in [0, 1]");
  stores_.reserve(shards.size());
  for (auto& s : shards) {
    stores_.emplace_back(std::move(s), /*capacity=*/0);  // unbounded
  }
}

std::string UncontrolledShuffler::label() const {
  return strategy_label(Strategy::kUncontrolled, q_);
}

void UncontrolledShuffler::begin_epoch(std::size_t epoch) {
  const auto m = stores_.size();
  stats_ = ExchangeStats{};
  stats_.epoch = epoch;
  stats_.sent_per_worker.assign(m, 0);
  stats_.received_per_worker.assign(m, 0);
  stats_.local_reads_per_worker.assign(m, 0);
  stats_.peak_occupancy_per_worker.assign(m, 0);

  if (q_ > 0.0 && m > 1) {
    // Every worker draws its own stream (NO shared seed — that is the
    // point of this baseline) and routes each picked sample to an
    // independent uniform destination.
    std::vector<std::vector<SampleId>> inbox(m);
    std::vector<std::vector<SampleId>> outgoing(m);
    for (std::size_t w = 0; w < m; ++w) {
      auto& store = stores_[w];
      store.reset_peak();
      Rng rng = Rng(seed_).fork(0xDE10, epoch, w);
      const auto quota = static_cast<std::size_t>(
          std::ceil(q_ * static_cast<double>(store.size())));
      const auto picks =
          rng.sample_without_replacement(store.size(), quota);
      for (auto slot : picks) {
        const SampleId id = store.ids()[slot];
        const auto dest = rng.uniform_u64(m);
        inbox[dest].push_back(id);
        outgoing[w].push_back(id);
        ++stats_.sent_per_worker[w];
      }
    }
    for (std::size_t w = 0; w < m; ++w) {
      for (SampleId id : inbox[w]) {
        stores_[w].add(id);
        ++stats_.received_per_worker[w];
      }
    }
    for (std::size_t w = 0; w < m; ++w) {
      for (SampleId id : outgoing[w]) stores_[w].remove_id(id);
    }
  } else {
    for (auto& s : stores_) s.reset_peak();
  }

  for (std::size_t w = 0; w < m; ++w) {
    post_exchange_local_shuffle(seed_, epoch, static_cast<int>(w),
                                stores_[w].mutable_ids());
    orders_[w] = stores_[w].ids();
    stats_.local_reads_per_worker[w] =
        orders_[w].size() >= stats_.received_per_worker[w]
            ? orders_[w].size() - stats_.received_per_worker[w]
            : 0;
    stats_.peak_occupancy_per_worker[w] = stores_[w].peak_occupancy();
  }
}

const std::vector<SampleId>& UncontrolledShuffler::local_order(
    int worker) const {
  DSHUF_CHECK(worker >= 0 && worker < workers(), "worker out of range");
  return orders_[static_cast<std::size_t>(worker)];
}

std::size_t UncontrolledShuffler::min_shard() const {
  std::size_t mn = SIZE_MAX;
  for (const auto& s : stores_) mn = std::min(mn, s.size());
  return mn;
}

std::size_t UncontrolledShuffler::max_shard() const {
  std::size_t mx = 0;
  for (const auto& s : stores_) mx = std::max(mx, s.size());
  return mx;
}

double UncontrolledShuffler::shard_imbalance() const {
  const auto mn = min_shard();
  return mn == 0 ? std::numeric_limits<double>::infinity()
                 : static_cast<double>(max_shard()) /
                       static_cast<double>(mn);
}

}  // namespace dshuf::shuffle
