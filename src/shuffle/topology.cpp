#include "shuffle/topology.hpp"

#include <mutex>

#include "util/error.hpp"
#include "util/ranked_mutex.hpp"

namespace dshuf::shuffle {

Topology Topology::resolved_for(int workers) const {
  DSHUF_CHECK_GT(groups, 0, "topology needs at least one group");
  Topology t = *this;
  if (t.group_size == 0) {
    DSHUF_CHECK_EQ(workers % groups, 0,
                   "workers (" << workers << ") must divide evenly into "
                               << groups << " groups");
    t.group_size = workers / groups;
  }
  DSHUF_CHECK_EQ(t.groups * t.group_size, workers,
                 "topology shape " << t.groups << "x" << t.group_size
                                   << " does not cover " << workers
                                   << " workers");
  DSHUF_CHECK_GT(t.intra_bw_bps, 0.0, "intra-group bandwidth must be > 0");
  DSHUF_CHECK_GT(t.inter_bw_bps, 0.0, "inter-group bandwidth must be > 0");
  DSHUF_CHECK(t.intra_fraction >= 0.0 && t.intra_fraction <= 1.0,
              "intra fraction must be in [0, 1]");
  return t;
}

namespace {

// Larger than an atomic, so the policy lives behind its own low-rank
// mutex; readers copy the whole optional out under the lock (taken with
// no other project lock held — once per epoch, at plan time).
RankedMutex g_topology_mu{LockRank::kShufflePolicy, "shuffle.topology"};
std::optional<Topology> g_topology;  // guarded by g_topology_mu

}  // namespace

std::optional<Topology> exchange_topology() {
  std::lock_guard<RankedMutex> lk(g_topology_mu);
  return g_topology;
}

void set_exchange_topology(const std::optional<Topology>& topo) {
  std::lock_guard<RankedMutex> lk(g_topology_mu);
  g_topology = topo;
}

}  // namespace dshuf::shuffle
