// Per-epoch data-movement arithmetic (Section III-B's worked example).
//
// For a dataset of `dataset_bytes` across M workers with exchange fraction
// Q, each epoch a worker sends (and receives) Q * D/M bytes and reads
// (1-Q) * D/M bytes locally; global shuffling instead reads D/M bytes from
// the PFS. Storage: GS needs the full dataset reachable, LS needs D/M per
// worker, PLS needs (1+Q) * D/M.
#pragma once

#include <cstdint>

namespace dshuf::shuffle {

struct TrafficParams {
  double dataset_bytes = 0;
  std::size_t workers = 1;
  double q = 0;
};

struct TrafficReport {
  double shard_bytes = 0;           // D / M
  double sent_per_worker = 0;       // Q * D / M (== received)
  double local_read_per_worker = 0; // (1 - Q) * D / M
  double pfs_read_per_worker_gs = 0;// D / M (global shuffling from PFS)
  double storage_local = 0;         // LS per-worker storage
  double storage_pls = 0;           // (1 + Q) * D / M
  double storage_global = 0;        // full dataset (replication) per worker
  /// PLS storage as a fraction of the dataset (the paper's headline
  /// "0.03% of the dataset" number for Fugaku at 4,096 workers, Q = 0.1).
  double pls_fraction_of_dataset = 0;
};

TrafficReport compute_traffic(const TrafficParams& p);

/// Exact integer form of `sent_per_worker` for one epoch of the real
/// exchange: `quota` samples of `bytes_per_sample` payload bytes each.
/// This is precisely what ExchangeOutcome::bytes_body measures (wire
/// framing is accounted separately in bytes_header), so the analytic model
/// and the executed exchange compare with ==, not a tolerance. With
/// quota = exchange_quota(shard, q) and uniform sample size it equals
/// ceil(q * shard) * bytes_per_sample, the integer refinement of
/// Q * D / M.
std::size_t pls_exchange_payload_bytes(std::size_t quota,
                                       std::size_t bytes_per_sample);

}  // namespace dshuf::shuffle
