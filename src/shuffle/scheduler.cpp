#include "shuffle/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "shuffle/shuffler.hpp"

namespace dshuf::shuffle {

namespace {
constexpr std::uint64_t kOrderTag = 0x71;
}  // namespace

Scheduler::Scheduler(std::vector<std::vector<SampleId>> shards, double q,
                     std::size_t local_batch, std::uint64_t seed)
    : q_(q), local_batch_(local_batch), seed_(seed), base_rng_(seed),
      orders_(shards.size()) {
  DSHUF_CHECK(!shards.empty(), "need at least one shard");
  DSHUF_CHECK(q >= 0.0 && q <= 1.0, "Q must be in [0, 1]");
  DSHUF_CHECK_GT(local_batch, 0U, "local batch must be positive");
  std::size_t min_shard = shards[0].size();
  for (const auto& s : shards) min_shard = std::min(min_shard, s.size());
  const std::size_t quota = exchange_quota(min_shard, q);
  stores_.reserve(shards.size());
  for (auto& s : shards) {
    const std::size_t cap = s.size() + quota;
    stores_.emplace_back(std::move(s), cap);
  }
}

std::size_t Scheduler::iterations_per_epoch() const {
  std::size_t min_shard = stores_[0].size();
  for (const auto& s : stores_) min_shard = std::min(min_shard, s.size());
  return (min_shard + local_batch_ - 1) / local_batch_;
}

void Scheduler::scheduling(std::size_t epoch) {
  DSHUF_CHECK(!epoch_open_,
              "scheduling() called before the previous epoch was cleaned");
  epoch_ = epoch;
  epoch_open_ = true;
  delivered_rounds_ = 0;

  const auto m = stores_.size();
  std::size_t min_shard = stores_[0].size();
  for (const auto& s : stores_) min_shard = std::min(min_shard, s.size());
  quota_ = exchange_quota(min_shard, q_);

  stats_ = ExchangeStats{};
  stats_.epoch = epoch;
  stats_.sent_per_worker.assign(m, 0);
  stats_.received_per_worker.assign(m, 0);
  stats_.local_reads_per_worker.assign(m, 0);
  stats_.peak_occupancy_per_worker.assign(m, 0);

  // Visit order for THIS epoch: the pre-exchange shard (Fig. 4 — received
  // samples join the working set at the next epoch).
  for (std::size_t w = 0; w < m; ++w) {
    stores_[w].reset_peak();
    Rng rng = base_rng_.fork(kOrderTag, epoch, w);
    orders_[w] = stores_[w].ids();
    rng.shuffle(orders_[w]);
    stats_.local_reads_per_worker[w] = orders_[w].size();
  }

  if (quota_ == 0 || m <= 1) {
    plan_.reset();
    outgoing_.assign(m, {});
    return;
  }

  plan_ = std::make_unique<ExchangePlan>(seed_, epoch, static_cast<int>(m),
                                         quota_);
  outgoing_.assign(m, {});
  for (std::size_t w = 0; w < m; ++w) {
    const auto picks =
        pick_permutation(seed_, epoch, static_cast<int>(w),
                         stores_[w].size());
    outgoing_[w].reserve(quota_);
    for (std::size_t i = 0; i < quota_; ++i) {
      outgoing_[w].push_back(stores_[w].ids()[picks[i]]);
    }
  }
}

void Scheduler::deliver_rounds(std::size_t upto) {
  DSHUF_CHECK_LE(upto, quota_, "cannot deliver past the quota");
  for (std::size_t i = delivered_rounds_; i < upto; ++i) {
    for (std::size_t w = 0; w < stores_.size(); ++w) {
      const int d = plan_->dest(i, static_cast<int>(w));
      stores_[static_cast<std::size_t>(d)].add(outgoing_[w][i]);
      ++stats_.received_per_worker[static_cast<std::size_t>(d)];
      ++stats_.sent_per_worker[w];
    }
  }
  delivered_rounds_ = upto;
}

Scheduler::IterationChunk Scheduler::communicate(std::size_t /*iteration*/) {
  DSHUF_CHECK(epoch_open_, "communicate() outside an open epoch");
  IterationChunk chunk;
  chunk.first_round = delivered_rounds_;
  if (plan_ == nullptr) return chunk;
  // Q*b samples per iteration so the quota completes within the epoch.
  const auto per_iter = static_cast<std::size_t>(
      std::ceil(q_ * static_cast<double>(local_batch_)));
  chunk.num_rounds = std::min(per_iter, quota_ - delivered_rounds_);
  deliver_rounds(delivered_rounds_ + chunk.num_rounds);
  return chunk;
}

void Scheduler::synchronize(const IterationChunk& chunk) {
  DSHUF_CHECK(epoch_open_, "synchronize() outside an open epoch");
  // Sequential driver: delivery already happened in communicate(); a real
  // deployment would MPI_Wait here. Validate the chunk is consistent.
  DSHUF_CHECK_LE(chunk.first_round + chunk.num_rounds, delivered_rounds_,
                 "synchronize() on an undelivered chunk");
}

void Scheduler::clean_local_storage() {
  DSHUF_CHECK(epoch_open_, "clean_local_storage() outside an open epoch");
  if (plan_ != nullptr) {
    deliver_rounds(quota_);  // Algorithm 1 line 7: finish outstanding sends
    for (std::size_t w = 0; w < stores_.size(); ++w) {
      for (SampleId id : outgoing_[w]) stores_[w].remove_id(id);
    }
  }
  for (std::size_t w = 0; w < stores_.size(); ++w) {
    stats_.peak_occupancy_per_worker[w] = stores_[w].peak_occupancy();
    // Final local shuffle so stores match PartialLocalShuffler's per-epoch
    // state (same stream => same permutation draws).
    post_exchange_local_shuffle(seed_, epoch_, static_cast<int>(w),
                                stores_[w].mutable_ids());
  }
  epoch_open_ = false;
}

const std::vector<SampleId>& Scheduler::local_order(int worker) const {
  DSHUF_CHECK(worker >= 0 && worker < workers(), "worker out of range");
  return orders_[static_cast<std::size_t>(worker)];
}

}  // namespace dshuf::shuffle
