// Shuffling-error analysis of Section IV-B.
//
// Building on Meng et al.'s convergence bound for distributed SGD with
// insufficient shuffling, the paper counts the permutations sigma that are
// consistent with a partial-local exchange of fraction Q between M
// partitions (Equations 8-9), derives the shuffling error
//   epsilon(A, h, N) = 1 - sigma / N!                        (Equation 11)
// and the non-domination condition
//   epsilon <= sqrt(b * M / N)
// under which the error does not dominate the convergence-rate bound
// (Equation 6). All factorials are handled in log space (lgamma), since
// N! for N = 1.2e6 is far beyond floating point.
#pragma once

#include <cstdint>

namespace dshuf::shuffle {

struct ErrorParams {
  double n = 0;  // |N|, dataset size
  double m = 0;  // |M|, workers
  double q = 0;  // exchange fraction
  double b = 0;  // per-worker minibatch
};

/// ln(sigma) per Equation 9: product of (i) permutations of one partition,
/// (ii) arrangements of candidate incoming samples, (iii) arrangements of
/// the outgoing picks, (iv) permutations of the remaining samples of the
/// other partitions.
double log_sigma(double n, double m, double q);

/// ln(N!) — the denominator of Equation 11.
double log_total_permutations(double n);

/// epsilon(A, h, N) = 1 - sigma / N!  (Equation 11). Returns a value in
/// [0, 1]; for practical (n, m) this is ~1 because sigma / N! underflows.
double shuffling_error(double n, double m, double q);

/// True when Equation 9's count exceeds N! — the regime where the paper's
/// formula is loose (small M, or large Q) and epsilon clamps to 0 rather
/// than meaning "perfectly shuffled". Callers should annotate such rows.
bool sigma_overcounts(double n, double m, double q);

/// The bound epsilon must not exceed for the error term not to dominate
/// Equation 6: sqrt(b * m / n).
double domination_threshold(double n, double m, double b);

/// True when the shuffling error dominates the convergence-rate bound for
/// these parameters (the paper's conclusion: true for all practical
/// settings, which is why the empirical study is needed).
bool error_dominates(const ErrorParams& p);

/// Convergence-rate upper-bound terms of Equation 6 for reporting:
/// sqrt(1/(S*n)), log(n)/n, and n * eps^2 / (b * m).
struct BoundTerms {
  double statistical = 0;   // sqrt(1 / (S * n))
  double optimization = 0;  // log(n) / n
  double shuffling = 0;     // n * eps^2 / (b * m)
};
BoundTerms bound_terms(const ErrorParams& p, double epochs);

}  // namespace dshuf::shuffle
