// Explicit network topology for the exchange — the knob Section V-F turns.
//
// The paper's hierarchical scheme exists because real clusters are not a
// flat crossbar: ranks within a node/rack share a fast local fabric while
// traffic between groups squeezes through a far thinner uplink. Topology
// captures exactly that two-level shape — G groups of S ranks, an
// intra-group NIC bandwidth and an inter-group uplink bandwidth — plus the
// two scheme knobs built on it:
//
//   * intra_fraction: the share of exchange rounds constrained to the
//     identity group permutation (purely intra-group rounds);
//   * leader_aggregation: whether each group coalesces its fabric-crossing
//     frames at a group leader before they cross (Corgi²-style staging),
//     so the uplink sees G-1 aggregate trunks instead of S*(G-1) flows.
//
// Like the wire mode (shuffle/exchange_wire.hpp) and the kernel backend,
// the topology is a process-wide policy with a scoped override: the
// exchange reads it exactly ONCE per epoch, so a flip between epochs is
// race-free and every rank runs the epoch under the same topology. Ranks
// are grouped contiguously (group_of(r) = r / group_size), matching
// HierarchicalExchangePlan.
#pragma once

#include <cstdint>
#include <optional>

namespace dshuf::shuffle {

struct Topology {
  int groups = 1;
  /// Ranks per group; 0 = derive as workers / groups at the point of use
  /// (the exchange checks divisibility).
  int group_size = 0;
  /// Per-rank NIC bandwidth inside a group, bytes/s.
  double intra_bw_bps = 1e9;
  /// Per-group uplink/downlink bandwidth to the global fabric, bytes/s.
  double inter_bw_bps = 1e9;
  /// Fraction of rounds restricted to the identity group permutation.
  double intra_fraction = 0.5;
  /// Coalesce fabric-crossing frames at group leaders before they cross.
  bool leader_aggregation = true;

  [[nodiscard]] int group_of(int rank) const { return rank / group_size; }
  /// Group leaders are the first rank of each group (rank g * group_size).
  [[nodiscard]] int leader_of(int group) const { return group * group_size; }

  /// Resolve group_size for `workers` ranks and check the shape divides.
  /// Returns a copy with group_size filled in.
  [[nodiscard]] Topology resolved_for(int workers) const;
};

/// Process-wide topology the exchange plans against; nullopt (the default)
/// keeps the flat Algorithm-1 permutations. Read ONCE per epoch by
/// run_pls_exchange_epoch / PlsEpochExchange, so flips between epochs are
/// race-free (same contract as set_exchange_wire — flip from the driving
/// thread before World::run).
[[nodiscard]] std::optional<Topology> exchange_topology();
void set_exchange_topology(const std::optional<Topology>& topo);

/// RAII override, restoring the previous topology on destruction.
class ScopedExchangeTopology {
 public:
  explicit ScopedExchangeTopology(const Topology& topo)
      : prev_(exchange_topology()) {
    set_exchange_topology(topo);
  }
  ~ScopedExchangeTopology() { set_exchange_topology(prev_); }
  ScopedExchangeTopology(const ScopedExchangeTopology&) = delete;
  ScopedExchangeTopology& operator=(const ScopedExchangeTopology&) = delete;

 private:
  std::optional<Topology> prev_;
};

}  // namespace dshuf::shuffle
