#include "shuffle/mpi_exchange.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "shuffle/exchange_plan.hpp"
#include "shuffle/exchange_tags.hpp"
#include "shuffle/shuffler.hpp"
#include "util/log.hpp"

namespace dshuf::shuffle {

namespace {

std::vector<std::byte> encode_sample(SampleId id,
                                     const std::vector<std::byte>& payload) {
  std::vector<std::byte> out(sizeof(SampleId) + payload.size());
  std::memcpy(out.data(), &id, sizeof(SampleId));
  if (!payload.empty()) {
    std::memcpy(out.data() + sizeof(SampleId), payload.data(),
                payload.size());
  }
  return out;
}

SampleId decode_sample_id(const std::vector<std::byte>& buf) {
  DSHUF_CHECK_GE(buf.size(), sizeof(SampleId), "short exchange message");
  SampleId id = 0;
  std::memcpy(&id, buf.data(), sizeof(SampleId));
  return id;
}

// The original fire-and-wait exchange (Algorithm 1 verbatim). Only valid
// on a perfect fabric. Tags come from the shared per-epoch tag-space
// helpers (shuffle/exchange_tags.hpp) so a stale message from one epoch
// can never match another epoch's receive.
ExchangeOutcome run_fast_path(comm::Communicator& comm, ShardStore& store,
                              const ExchangePlan& plan, std::size_t epoch,
                              const std::vector<SampleId>& outgoing,
                              const PayloadFn& payload,
                              const DepositFn& deposit) {
  const int rank = comm.rank();
  const std::size_t quota = outgoing.size();
  const std::uint64_t tag_base = epoch_tag_base(epoch, quota);

  // Algorithm 1 lines 2-6: isend the p[i]-th sample to dest_i[rank],
  // irecv from ANY_SOURCE. Tag = round index keeps rounds aligned.
  std::vector<comm::Request> requests;
  requests.reserve(2 * quota);
  std::size_t bytes_sent = 0;
  for (std::size_t i = 0; i < quota; ++i) {
    const int dest = plan.dest(i, rank);
    std::vector<std::byte> body =
        payload ? payload(outgoing[i]) : std::vector<std::byte>{};
    std::vector<std::byte> wire = encode_sample(outgoing[i], body);
    bytes_sent += wire.size();
    requests.push_back(
        comm.isend(dest, data_tag(tag_base, i), std::move(wire)));
    requests.push_back(comm.irecv(comm::kAnySource, data_tag(tag_base, i)));
  }
  // Algorithm 1 line 7: wait for all outstanding requests.
  comm::wait_all(requests);

  // Stage received samples (receive requests are the odd entries), then
  // clean transmitted ones from local storage — the (1+Q)-capacity window.
  for (std::size_t i = 0; i < quota; ++i) {
    const auto& msg = requests[2 * i + 1].message();
    const SampleId got = decode_sample_id(msg.payload);
    store.add(got);
    if (deposit) {
      deposit(got, std::span<const std::byte>(
                       msg.payload.data() + sizeof(SampleId),
                       msg.payload.size() - sizeof(SampleId)));
    }
  }
  for (SampleId id : outgoing) store.remove_id(id);

  ExchangeOutcome out;
  out.rounds = quota;
  out.sends_committed = quota;
  out.recvs_committed = quota;
  out.bytes_sent = bytes_sent;
  out.bytes_offered = bytes_sent;
  return out;
}

// Retry/timeout protocol. Every round runs a DATA/ACK handshake; all
// rounds progress concurrently in one event loop so a single slow peer
// cannot serialise the epoch. Commit decisions are NOT taken from ACKs
// (those are lossy too) but from the receivers' bitmaps, exchanged over
// the reliable collective path at the end — that is what keeps sender and
// receiver in agreement no matter which messages were lost.
ExchangeOutcome run_robust_path(comm::Communicator& comm, ShardStore& store,
                                const ExchangePlan& plan, std::size_t epoch,
                                const std::vector<SampleId>& outgoing,
                                const PayloadFn& payload,
                                const DepositFn& deposit,
                                const ExchangeRobustness& robust) {
  using Clock = std::chrono::steady_clock;
  const int rank = comm.rank();
  const std::size_t quota = outgoing.size();
  DSHUF_CHECK_GT(robust.max_attempts, 0, "need at least one send attempt");
  const std::uint64_t tag_base = epoch_tag_base(epoch, quota);

  ExchangeOutcome out;
  out.rounds = quota;

  struct RoundState {
    int dest = -1;
    int src = -1;
    comm::Request rx_data;  // the sample we expect this round
    comm::Request rx_ack;   // our peer's acknowledgement of our sample
    std::vector<std::byte> wire;  // encoded outgoing sample, kept for retries
    bool recv_done = false;
    bool recv_ok = false;
    bool send_done = false;
    int attempts = 0;
    Clock::time_point next_retry;
    SampleId got = 0;
    std::vector<std::byte> got_body;
  };

  const auto start = Clock::now();
  std::vector<RoundState> rounds(quota);
  for (std::size_t i = 0; i < quota; ++i) {
    auto& r = rounds[i];
    r.dest = plan.dest(i, rank);
    r.src = plan.source(i, rank);
    // Post both receives before the first send so no early arrival is ever
    // unmatched, then fire attempt 1.
    r.rx_data = comm.irecv(r.src, data_tag(tag_base, i));
    r.rx_ack = comm.irecv(r.dest, ack_tag(tag_base, i));
    std::vector<std::byte> body =
        payload ? payload(outgoing[i]) : std::vector<std::byte>{};
    r.wire = encode_sample(outgoing[i], body);
    comm.isend(r.dest, data_tag(tag_base, i), r.wire);
    out.bytes_sent += r.wire.size();
    out.bytes_offered += r.wire.size();
    r.attempts = 1;
    r.next_retry = start + robust.ack_timeout;
  }
  const auto recv_deadline_at = start + robust.recv_deadline;

  auto take_data = [&](std::size_t i, RoundState& r) {
    const auto& msg = r.rx_data.message();
    r.got = decode_sample_id(msg.payload);
    r.got_body.assign(msg.payload.begin() +
                          static_cast<std::ptrdiff_t>(sizeof(SampleId)),
                      msg.payload.end());
    r.recv_done = true;
    r.recv_ok = true;
    comm.isend(r.src, ack_tag(tag_base, i), {});
  };

  std::size_t open = 2 * quota;  // unfinished send + receive duties
  while (open > 0) {
    bool progressed = false;
    const auto now = Clock::now();
    for (std::size_t i = 0; i < quota; ++i) {
      auto& r = rounds[i];
      if (!r.recv_done) {
        if (r.rx_data.test()) {
          take_data(i, r);
          --open;
          progressed = true;
        } else if (now >= recv_deadline_at) {
          if (comm.cancel(r.rx_data)) {
            r.recv_done = true;  // LS fallback: the sender keeps it
            ++out.recv_fallbacks;
            LOG_DEBUG << "round " << i << " recv deadline expired; "
                      << "expected sample stays with rank " << r.src;
          } else {
            take_data(i, r);  // arrival raced the cancel — accept it
          }
          --open;
          progressed = true;
        }
      }
      if (!r.send_done) {
        if (r.rx_ack.test()) {
          r.send_done = true;
          --open;
          progressed = true;
        } else if (now >= r.next_retry) {
          if (r.attempts >= robust.max_attempts) {
            // Give up retrying. The round may still commit if an earlier
            // attempt landed — the reconciliation bitmap decides.
            comm.cancel(r.rx_ack);
            r.send_done = true;
            --open;
            LOG_DEBUG << "round " << i << " exhausted " << r.attempts
                      << " attempts to rank " << r.dest
                      << "; reconciliation decides";
          } else {
            comm.isend(r.dest, data_tag(tag_base, i), r.wire);
            out.bytes_sent += r.wire.size();
            ++r.attempts;
            ++out.retries;
            const auto backoff = std::chrono::duration_cast<
                std::chrono::microseconds>(
                robust.ack_timeout *
                std::pow(robust.backoff, r.attempts - 1));
            r.next_retry = now + backoff;
          }
          progressed = true;
        }
      }
    }
    if (open > 0 && !progressed) {
      std::this_thread::sleep_for(robust.poll_interval);
    }
  }

  // Stage received samples in round order — the same per-store append
  // order the sequential driver produces, so fault-free (no-drop) runs
  // stay bit-identical to PartialLocalShuffler.
  for (std::size_t i = 0; i < quota; ++i) {
    auto& r = rounds[i];
    if (!r.recv_ok) continue;
    store.add(r.got);
    ++out.recvs_committed;
    if (deposit) {
      deposit(r.got, std::span<const std::byte>(r.got_body));
    }
  }

  // Quiesce the fabric: after the barrier no rank sends again this epoch,
  // so fencing flushes every delayed message and the drain below removes
  // late arrivals, duplicate copies, and orphaned ACKs.
  {
    obs::SpanGuard fence_span("exchange.fence");
    comm.barrier();
    comm.fence_faults();
    while (auto stray = comm.poll(comm::kAnySource, comm::kAnyTag)) {
      ++out.strays_drained;
      if (is_epoch_data_tag(stray->tag, tag_base, quota)) {
        const auto i = round_of_data_tag(stray->tag, tag_base);
        if (rounds[i].recv_ok) ++out.duplicates_suppressed;
      }
    }
    DSHUF_HISTOGRAM_US("exchange.fence_wait_us").observe(fence_span.finish());
  }

  // Reconciliation over the reliable control plane: each rank publishes
  // which rounds it received; the receiver's word is the commit decision,
  // so the sample ends up at exactly one rank (receiver if the bit is set,
  // sender otherwise).
  DSHUF_SPAN("exchange.reconcile");
  std::vector<std::byte> received_bits(quota);
  for (std::size_t i = 0; i < quota; ++i) {
    received_bits[i] =
        rounds[i].recv_ok ? std::byte{1} : std::byte{0};
  }
  const auto all_bits = comm.allgather(std::move(received_bits));
  for (std::size_t i = 0; i < quota; ++i) {
    const auto dest = static_cast<std::size_t>(rounds[i].dest);
    DSHUF_CHECK_EQ(all_bits[dest].size(), quota,
                   "reconciliation bitmap length mismatch");
    if (all_bits[dest][i] != std::byte{0}) {
      store.remove_id(outgoing[i]);
      ++out.sends_committed;
    } else {
      ++out.send_fallbacks;
      LOG_DEBUG << "round " << i << " not received by rank "
                << rounds[i].dest << "; keeping sample locally";
    }
  }
  return out;
}

}  // namespace

ExchangeOutcome run_pls_exchange_epoch(comm::Communicator& comm,
                                       ShardStore& store, std::uint64_t seed,
                                       std::size_t epoch, double q,
                                       std::size_t global_min_shard,
                                       const PayloadFn& payload,
                                       const DepositFn& deposit,
                                       const ExchangeRobustness* robust) {
  const int rank = comm.rank();
  const int m = comm.size();
  const std::size_t quota = exchange_quota(global_min_shard, q);
  if (quota == 0 || m <= 1) return {};

  // Spans from this rank thread land on their own trace lane, and every
  // log line it emits carries the (rank, epoch) it was working for.
  obs::Tracer::set_thread_track(rank);
  ScopedLogContext log_ctx(rank, static_cast<std::int64_t>(epoch));
  obs::SpanGuard epoch_span("exchange.epoch",
                            {{"epoch", std::to_string(epoch)},
                             {"rank", std::to_string(rank)}});

  // Every rank recomputes the identical plan from the shared seed —
  // Algorithm 1's "all workers use the same random seed".
  const ExchangePlan plan(seed, epoch, m, quota);
  const auto picks = pick_permutation(seed, epoch, rank, store.size());
  DSHUF_CHECK_GE(store.size(), quota,
                 "rank " << rank << " shard smaller than the exchange quota");

  std::vector<SampleId> outgoing(quota);
  for (std::size_t i = 0; i < quota; ++i) {
    outgoing[i] = store.ids()[picks[i]];
  }

  ExchangeOutcome out;
  if (robust == nullptr) {
    DSHUF_CHECK(!comm.fault_injection_enabled(),
                "the fast-path exchange cannot survive fault injection — "
                "pass an ExchangeRobustness budget");
    out = run_fast_path(comm, store, plan, epoch, outgoing, payload, deposit);
  } else {
    out = run_robust_path(comm, store, plan, epoch, outgoing, payload,
                          deposit, *robust);
  }

  // Fold the outcome into the process-wide registry; the per-field names
  // mirror ExchangeOutcome so ExchangeStats aggregates and counters can be
  // cross-checked exactly.
  DSHUF_COUNTER("exchange.epochs").add();
  DSHUF_COUNTER("exchange.rounds").add(out.rounds);
  DSHUF_COUNTER("exchange.sends_committed").add(out.sends_committed);
  DSHUF_COUNTER("exchange.send_fallbacks").add(out.send_fallbacks);
  DSHUF_COUNTER("exchange.recvs_committed").add(out.recvs_committed);
  DSHUF_COUNTER("exchange.recv_fallbacks").add(out.recv_fallbacks);
  DSHUF_COUNTER("exchange.retries").add(out.retries);
  DSHUF_COUNTER("exchange.duplicates_suppressed")
      .add(out.duplicates_suppressed);
  DSHUF_COUNTER("exchange.strays_drained").add(out.strays_drained);
  DSHUF_COUNTER("exchange.bytes_sent").add(out.bytes_sent);

  // bytes_offered is fault-schedule independent, so this attribute is
  // stable across reruns; retransmitted bytes live in the counter above.
  epoch_span.attr("bytes", std::to_string(out.bytes_offered));
  return out;
}

}  // namespace dshuf::shuffle
