#include "shuffle/mpi_exchange.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "shuffle/exchange_tags.hpp"
#include "shuffle/shuffler.hpp"
#include "shuffle/topology.hpp"
#include "util/log.hpp"
#include "util/noalloc.hpp"

namespace dshuf::shuffle {

namespace {

// Per-sample wire encoding: 4-byte SampleId followed by the payload,
// appended by the PayloadFn straight into the (pooled) wire buffer — one
// buffer per message, no intermediate payload vector.
void encode_sample_into(SampleId id, const PayloadFn& payload,
                        std::vector<std::byte>& wire) {
  wire.resize(sizeof(SampleId));
  std::memcpy(wire.data(), &id, sizeof(SampleId));
  if (payload) payload(id, wire);
}

SampleId decode_sample_id(const std::vector<std::byte>& buf) {
  DSHUF_CHECK_GE(buf.size(), sizeof(SampleId), "short exchange message");
  SampleId id = 0;
  std::memcpy(&id, buf.data(), sizeof(SampleId));
  return id;
}

// Resolve this epoch's plan into s.active. The shape comes from the
// process-wide topology policy (flat Algorithm-1 permutations when none is
// set, the grouped hierarchical plan otherwise) and the storage from the
// interning switch: rebuilt in place in this rank's scratch (the
// allocation-free steady state) or fetched from the process-wide shared
// cache (thousand-rank virtual worlds, where per-rank copies of a
// quota x M table would be O(M^2) memory).
const ExchangePlan& plan_for_epoch(std::uint64_t seed, std::size_t epoch,
                                   int m, std::size_t quota,
                                   ExchangeScratch& s) {
  PlanSpec spec;
  spec.seed = seed;
  spec.epoch = epoch;
  spec.workers = m;
  spec.quota = quota;
  if (const auto topo = exchange_topology()) {
    const Topology t = topo->resolved_for(m);
    if (t.groups > 1) {
      spec.groups = t.groups;
      spec.group_size = t.group_size;
      spec.intra_fraction = t.intra_fraction;
    }
  }
  if (plan_interning_enabled()) {
    s.interned = intern_exchange_plan(spec);
    s.active = s.interned.get();
  } else {
    if (spec.groups > 1) {
      s.plan.rebuild_grouped(spec.seed, spec.epoch, spec.groups,
                             spec.group_size, spec.quota,
                             spec.intra_fraction);
    } else {
      s.plan.rebuild(seed, epoch, m, quota);
    }
    s.interned.reset();
    s.active = &s.plan;
  }
  return *s.active;
}

// Fill one CSR side (peers / off / rounds) from (peer, round) pairs.
// Sorting by (peer, round) groups rounds by peer while keeping round order
// within each peer — exactly the iteration order the dense layout had.
void fill_csr_side(std::vector<std::pair<int, std::uint32_t>>& pairs,
                   std::vector<int>& peers, std::vector<std::uint32_t>& off,
                   std::vector<std::uint32_t>& rounds) {
  std::sort(pairs.begin(), pairs.end());
  peers.clear();
  off.clear();
  rounds.clear();
  for (const auto& [peer, round] : pairs) {
    if (peers.empty() || peers.back() != peer) {
      peers.push_back(peer);
      off.push_back(static_cast<std::uint32_t>(rounds.size()));
    }
    rounds.push_back(round);
  }
  off.push_back(static_cast<std::uint32_t>(rounds.size()));
}

// Group the epoch's rounds by peer into the scratch's CSR routing: slot k
// of send_peers/recv_peers exchanges the rounds in the [off[k], off[k+1])
// slice, in round order. Only peers with traffic appear — the map is
// O(quota), not O(M), which is what lets 4096-rank worlds fit in memory.
void build_peer_routing(const ExchangePlan& plan, int rank,
                        std::size_t quota, ExchangeScratch& s) {
  auto& pairs = s.route_pairs;
  pairs.resize(quota);  // analyze:alloc-ok amortised into retained capacity
  for (std::size_t i = 0; i < quota; ++i) {
    pairs[i] = {plan.dest(i, rank), static_cast<std::uint32_t>(i)};
  }
  fill_csr_side(pairs, s.send_peers, s.send_off, s.send_rounds);
  for (std::size_t i = 0; i < quota; ++i) {
    pairs[i] = {plan.source(i, rank), static_cast<std::uint32_t>(i)};
  }
  fill_csr_side(pairs, s.recv_peers, s.recv_off, s.recv_rounds);
  // Invert: which recv slot serves each round (staging walks rounds).
  s.round_slot.resize(quota);  // analyze:alloc-ok amortised as above
  for (std::size_t k = 0; k + 1 < s.recv_off.size(); ++k) {
    for (std::uint32_t j = s.recv_off[k]; j < s.recv_off[k + 1]; ++j) {
      s.round_slot[s.recv_rounds[j]] = static_cast<std::uint32_t>(k);
    }
  }
}

// Rounds a slot receives (count for the frame cross-check).
std::size_t recv_slot_count(const ExchangeScratch& s, std::size_t slot) {
  return s.recv_off[slot + 1] - s.recv_off[slot];
}

// Recv slot of origin rank `p`, or npos when p sends us nothing this
// epoch (stray-drain bookkeeping needs the miss case).
std::size_t recv_slot_of(const ExchangeScratch& s, int p) {
  const auto it =
      std::lower_bound(s.recv_peers.begin(), s.recv_peers.end(), p);
  if (it == s.recv_peers.end() || *it != p) {
    return static_cast<std::size_t>(-1);
  }
  return static_cast<std::size_t>(it - s.recv_peers.begin());
}

// Capacity hint for a pooled frame buffer: the largest frame this epoch
// could produce (all quota rounds to one peer, every payload at the high
// water mark). Acquiring at this bound means a steady-state epoch never
// outgrows its buffer, so packing never reallocates.
std::size_t frame_capacity_bound(std::size_t quota, std::size_t payload_high) {
  return frame_header_bytes(quota) +
         quota * (sizeof(SampleId) + payload_high);
}

// Pack this rank's frame for peer `dest` into `buf` and account the
// bytes. The header carries the trace context (origin + flow id), so a
// retransmission of the same buffer propagates the same context. Returns
// the number of samples packed.
DSHUF_NOALLOC std::size_t pack_frame_for_peer(
    std::vector<std::byte>& buf, std::size_t epoch, int origin, int dest,
    std::span<const std::uint32_t> rounds, const PayloadFn& payload,
    ExchangeScratch& s, ExchangeOutcome& out) {
  FrameWriter writer(buf, static_cast<std::uint64_t>(epoch), origin,
                     frame_flow_id(epoch, origin, dest),
                     static_cast<std::uint32_t>(rounds.size()));
  for (std::uint32_t i : rounds) {
    writer.begin_sample(s.outgoing[i]);
    const std::size_t before = buf.size();
    if (payload) payload(s.outgoing[i], buf);
    const std::size_t body = buf.size() - before;
    if (body > s.payload_high_water) s.payload_high_water = body;
    out.bytes_body += body;
  }
  writer.finish();
  out.bytes_header +=
      frame_header_bytes(rounds.size()) + rounds.size() * sizeof(SampleId);
  return rounds.size();
}

// The [off[k], off[k+1]) slice of a CSR side as a span.
std::span<const std::uint32_t> csr_slice(
    const std::vector<std::uint32_t>& rounds,
    const std::vector<std::uint32_t>& off, std::size_t slot) {
  return std::span<const std::uint32_t>(rounds).subspan(
      off[slot], off[slot + 1] - off[slot]);
}

// Parse + sanity-check a received frame before anything is staged, and
// record the receive endpoint of the frame's flow under the id the sender
// put on the wire — this is where the propagated trace context closes the
// cross-rank arrow.
FrameView checked_frame_view(const comm::Message& msg, std::size_t epoch,
                             std::size_t expected_count, int peer) {
  FrameView view = parse_frame(msg.payload);
  DSHUF_CHECK_EQ(view.epoch(), static_cast<std::uint64_t>(epoch),
                 "frame from rank " << peer << " belongs to another epoch");
  DSHUF_CHECK_EQ(static_cast<std::size_t>(view.origin()),
                 static_cast<std::size_t>(peer),
                 "frame trace context names origin " << view.origin()
                     << " but arrived from rank " << peer);
  DSHUF_CHECK_EQ(static_cast<std::size_t>(view.count()), expected_count,
                 "frame from rank " << peer
                                    << " disagrees with the exchange plan");
  auto& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    tracer.flow_point("exchange.frame", view.flow_id(),
                      obs::FlowPhase::kFinish,
                      {{"epoch", std::to_string(epoch)}});
  }
  return view;
}

// Stage every received sample into the store in ROUND order — the same
// per-store append order the sequential driver produces — handing the
// deposit a span view into the frame. Cursor[slot] walks that slot's
// frame in lockstep because its recv_rounds slice is itself in round
// order.
std::size_t stage_frames_in_round_order(ShardStore& store, std::size_t quota,
                                        const DepositFn& deposit,
                                        ExchangeScratch& s,
                                        const std::vector<char>* frame_ok) {
  std::size_t staged = 0;
  s.cursor.assign(s.views.size(), 0);
  for (std::size_t i = 0; i < quota; ++i) {
    const auto slot = static_cast<std::size_t>(s.round_slot[i]);
    if (frame_ok != nullptr && (*frame_ok)[slot] == 0) continue;
    const std::uint32_t j = s.cursor[slot]++;
    const SampleId got = s.views[slot].id(j);
    store.add(got);
    ++staged;
    if (deposit) deposit(got, s.views[slot].payload(j));
  }
  return staged;
}

// ------------------------------------------------------------ fast paths --

// Fire-and-wait, one message per round (the original wire). Rewritten on
// the pooled-buffer data path: each message's buffer comes from the pool
// and returns to the receiver's pool after staging.
ExchangeOutcome run_fast_per_sample(comm::Communicator& comm,
                                    ShardStore& store, std::size_t epoch,
                                    const PayloadFn& payload,
                                    const DepositFn& deposit,
                                    ExchangeScratch& s) {
  const int rank = comm.rank();
  const int m = comm.size();
  const std::size_t quota = s.outgoing.size();
  const std::uint64_t tag_base = epoch_tag_base(epoch, quota, m);
  const ExchangePlan& plan = *s.active;

  ExchangeOutcome out;
  out.rounds = quota;

  auto& tracer = obs::Tracer::instance();

  // Algorithm 1 lines 2-6: send the p[i]-th sample to dest_i[rank]. Tag =
  // round index keeps rounds aligned across ranks.
  for (std::size_t i = 0; i < quota; ++i) {
    const int dest = plan.dest(i, rank);
    auto wire = comm.pool().acquire(sizeof(SampleId) + s.payload_high_water);
    encode_sample_into(s.outgoing[i], payload, wire);
    const std::size_t body = wire.size() - sizeof(SampleId);
    if (body > s.payload_high_water) s.payload_high_water = body;
    out.bytes_header += sizeof(SampleId);
    out.bytes_body += body;
    out.bytes_sent += wire.size();
    out.bytes_offered += wire.size();
    ++out.msgs_sent;
    comm.send(dest, data_tag(tag_base, i), std::move(wire));
    if (tracer.enabled()) {
      tracer.flow_point("exchange.sample", sample_flow_id(tag_base, i, rank),
                        obs::FlowPhase::kSend,
                        {{"epoch", std::to_string(epoch)}});
    }
  }

  // Line 7: collect each round's sample (blocking; sends above already
  // completed locally, so no rank can deadlock here) and stage it in round
  // order — identical store-append order to the sequential driver.
  for (std::size_t i = 0; i < quota; ++i) {
    comm::Message msg = comm.recv(comm::kAnySource, data_tag(tag_base, i));
    if (tracer.enabled()) {
      // The per-sample wire carries no context bytes: (source, tag)
      // re-derive the sender's flow id exactly.
      tracer.flow_point("exchange.sample",
                        sample_flow_id(tag_base, i, msg.source),
                        obs::FlowPhase::kFinish,
                        {{"epoch", std::to_string(epoch)}});
    }
    const SampleId got = decode_sample_id(msg.payload);
    store.add(got);
    if (deposit) {
      deposit(got, std::span<const std::byte>(
                       msg.payload.data() + sizeof(SampleId),
                       msg.payload.size() - sizeof(SampleId)));
    }
    comm.pool().release(std::move(msg.payload));
  }
  for (SampleId id : s.outgoing) store.remove_id(id);

  out.sends_committed = quota;
  out.recvs_committed = quota;
  return out;
}

// ---------------------------------------------------------- robust paths --

// Retry backoff for attempt `attempts` (the one just sent), in the
// communicator's microsecond clock.
std::uint64_t backoff_us(const ExchangeRobustness& robust, int attempts) {
  return static_cast<std::uint64_t>(
      static_cast<double>(robust.ack_timeout.count()) *
      std::pow(robust.backoff, attempts - 1));
}

// Retry/timeout protocol, per-sample wire. Every round runs a DATA/ACK
// handshake; all rounds progress concurrently in one event loop so a
// single slow peer cannot serialise the epoch. Commit decisions are NOT
// taken from ACKs (those are lossy too) but from the receivers' bitmaps,
// exchanged over the reliable collective path at the end — that is what
// keeps sender and receiver in agreement no matter which messages were
// lost.
//
// All deadlines/retries read Communicator::now_us() and pauses go through
// Communicator::backoff(): on the threaded world that is wall time and a
// real sleep, on the event-driven world virtual time and a fiber timer —
// a wall-clock sleep there would stall the epoch forever, since virtual
// time only advances while fibers are suspended on it.
ExchangeOutcome run_robust_per_sample(comm::Communicator& comm,
                                      ShardStore& store, std::size_t epoch,
                                      const PayloadFn& payload,
                                      const DepositFn& deposit,
                                      const ExchangeRobustness& robust,
                                      ExchangeScratch& s) {
  const int rank = comm.rank();
  const std::size_t quota = s.outgoing.size();
  DSHUF_CHECK_GT(robust.max_attempts, 0, "need at least one send attempt");
  const std::uint64_t tag_base = epoch_tag_base(epoch, quota, comm.size());
  const ExchangePlan& plan = *s.active;

  ExchangeOutcome out;
  out.rounds = quota;

  struct RoundState {
    int dest = -1;
    int src = -1;
    comm::Request rx_data;  // the sample we expect this round
    comm::Request rx_ack;   // our peer's acknowledgement of our sample
    std::vector<std::byte> wire;  // encoded outgoing sample, kept for retries
    bool recv_done = false;
    bool recv_ok = false;
    bool send_done = false;
    int attempts = 0;
    std::uint64_t next_retry_us = 0;
    SampleId got = 0;
    std::vector<std::byte> got_body;
  };

  auto& tracer = obs::Tracer::instance();
  const std::uint64_t start = comm.now_us();
  std::vector<RoundState> rounds(quota);
  for (std::size_t i = 0; i < quota; ++i) {
    auto& r = rounds[i];
    r.dest = plan.dest(i, rank);
    r.src = plan.source(i, rank);
    // Post both receives before the first send so no early arrival is ever
    // unmatched, then fire attempt 1.
    r.rx_data = comm.irecv(r.src, data_tag(tag_base, i));
    r.rx_ack = comm.irecv(r.dest, ack_tag(tag_base, i));
    encode_sample_into(s.outgoing[i], payload, r.wire);
    comm.send(r.dest, data_tag(tag_base, i), r.wire);
    if (tracer.enabled()) {
      tracer.flow_point("exchange.sample", sample_flow_id(tag_base, i, rank),
                        obs::FlowPhase::kSend,
                        {{"epoch", std::to_string(epoch)}});
    }
    ++out.msgs_sent;
    out.bytes_header += sizeof(SampleId);
    out.bytes_body += r.wire.size() - sizeof(SampleId);
    out.bytes_sent += r.wire.size();
    out.bytes_offered += r.wire.size();
    r.attempts = 1;
    r.next_retry_us =
        start + static_cast<std::uint64_t>(robust.ack_timeout.count());
  }
  const std::uint64_t recv_deadline_at =
      start + static_cast<std::uint64_t>(robust.recv_deadline.count());

  auto take_data = [&](std::size_t i, RoundState& r) {
    const auto& msg = r.rx_data.message();
    if (tracer.enabled()) {
      // Retries resend the same bytes on the same tag, so whichever
      // attempt landed, (source, tag) re-derive the sender's flow id.
      tracer.flow_point("exchange.sample",
                        sample_flow_id(tag_base, i, msg.source),
                        obs::FlowPhase::kFinish,
                        {{"epoch", std::to_string(epoch)}});
    }
    r.got = decode_sample_id(msg.payload);
    r.got_body.assign(msg.payload.begin() +
                          static_cast<std::ptrdiff_t>(sizeof(SampleId)),
                      msg.payload.end());
    r.recv_done = true;
    r.recv_ok = true;
    comm.send(r.src, ack_tag(tag_base, i), {});
    ++out.msgs_sent;
  };

  std::size_t open = 2 * quota;  // unfinished send + receive duties
  while (open > 0) {
    bool progressed = false;
    const std::uint64_t now = comm.now_us();
    for (std::size_t i = 0; i < quota; ++i) {
      auto& r = rounds[i];
      if (!r.recv_done) {
        if (r.rx_data.test()) {
          take_data(i, r);
          --open;
          progressed = true;
        } else if (now >= recv_deadline_at) {
          if (comm.cancel(r.rx_data)) {
            r.recv_done = true;  // LS fallback: the sender keeps it
            ++out.recv_fallbacks;
            LOG_DEBUG << "round " << i << " recv deadline expired; "
                      << "expected sample stays with rank " << r.src;
          } else {
            take_data(i, r);  // arrival raced the cancel — accept it
          }
          --open;
          progressed = true;
        }
      }
      if (!r.send_done) {
        if (r.rx_ack.test()) {
          r.send_done = true;
          --open;
          progressed = true;
        } else if (now >= r.next_retry_us) {
          if (r.attempts >= robust.max_attempts) {
            // Give up retrying. The round may still commit if an earlier
            // attempt landed — the reconciliation bitmap decides.
            comm.cancel(r.rx_ack);
            r.send_done = true;
            --open;
            LOG_DEBUG << "round " << i << " exhausted " << r.attempts
                      << " attempts to rank " << r.dest
                      << "; reconciliation decides";
          } else {
            comm.send(r.dest, data_tag(tag_base, i), r.wire);
            if (tracer.enabled()) {
              tracer.flow_point("exchange.sample",
                                sample_flow_id(tag_base, i, rank),
                                obs::FlowPhase::kStep,
                                {{"epoch", std::to_string(epoch)}});
            }
            ++out.msgs_sent;
            out.bytes_sent += r.wire.size();
            ++r.attempts;
            ++out.retries;
            r.next_retry_us = now + backoff_us(robust, r.attempts);
          }
          progressed = true;
        }
      }
    }
    if (open > 0 && !progressed) {
      comm.backoff(robust.poll_interval);
    }
  }

  // Stage received samples in round order — the same per-store append
  // order the sequential driver produces, so fault-free (no-drop) runs
  // stay bit-identical to PartialLocalShuffler.
  for (std::size_t i = 0; i < quota; ++i) {
    auto& r = rounds[i];
    if (!r.recv_ok) continue;
    store.add(r.got);
    ++out.recvs_committed;
    if (deposit) {
      deposit(r.got, std::span<const std::byte>(r.got_body));
    }
  }

  // Quiesce the fabric: after the barrier no rank sends again this epoch,
  // so fencing flushes every delayed message and the drain below removes
  // late arrivals, duplicate copies, and orphaned ACKs.
  {
    obs::SpanGuard fence_span("exchange.fence");
    comm.barrier();
    comm.fence_faults();
    while (auto stray = comm.poll(comm::kAnySource, comm::kAnyTag)) {
      ++out.strays_drained;
      if (is_epoch_data_tag(stray->tag, tag_base, quota)) {
        const auto i = round_of_data_tag(stray->tag, tag_base);
        if (rounds[i].recv_ok) ++out.duplicates_suppressed;
      }
    }
    DSHUF_HISTOGRAM_US("exchange.fence_wait_us").observe(fence_span.finish());
  }

  // Reconciliation over the reliable control plane: each rank publishes
  // which rounds it received; the receiver's word is the commit decision,
  // so the sample ends up at exactly one rank (receiver if the bit is set,
  // sender otherwise).
  DSHUF_SPAN("exchange.reconcile");
  std::vector<std::byte> received_bits(quota);
  for (std::size_t i = 0; i < quota; ++i) {
    received_bits[i] =
        rounds[i].recv_ok ? std::byte{1} : std::byte{0};
  }
  const auto all_bits = comm.allgather(std::move(received_bits));
  for (std::size_t i = 0; i < quota; ++i) {
    const auto dest = static_cast<std::size_t>(rounds[i].dest);
    DSHUF_CHECK_EQ(all_bits[dest].size(), quota,
                   "reconciliation bitmap length mismatch");
    if (all_bits[dest][i] != std::byte{0}) {
      store.remove_id(s.outgoing[i]);
      ++out.sends_committed;
    } else {
      ++out.send_fallbacks;
      LOG_DEBUG << "round " << i << " not received by rank "
                << rounds[i].dest << "; keeping sample locally";
    }
  }
  return out;
}

// Fold the outcome into the process-wide registry; the per-field names
// mirror ExchangeOutcome so ExchangeStats aggregates and counters can be
// cross-checked exactly.
void fold_outcome_counters(const ExchangeOutcome& out) {
  DSHUF_COUNTER("exchange.epochs").add();
  DSHUF_COUNTER("exchange.rounds").add(out.rounds);
  DSHUF_COUNTER("exchange.sends_committed").add(out.sends_committed);
  DSHUF_COUNTER("exchange.send_fallbacks").add(out.send_fallbacks);
  DSHUF_COUNTER("exchange.recvs_committed").add(out.recvs_committed);
  DSHUF_COUNTER("exchange.recv_fallbacks").add(out.recv_fallbacks);
  DSHUF_COUNTER("exchange.retries").add(out.retries);
  DSHUF_COUNTER("exchange.duplicates_suppressed")
      .add(out.duplicates_suppressed);
  DSHUF_COUNTER("exchange.strays_drained").add(out.strays_drained);
  DSHUF_COUNTER("exchange.msgs").add(out.msgs_sent);
  DSHUF_COUNTER("exchange.bytes.header").add(out.bytes_header);
  DSHUF_COUNTER("exchange.bytes.body").add(out.bytes_body);
  DSHUF_COUNTER("exchange.bytes_sent").add(out.bytes_sent);
}

}  // namespace

// ------------------------------------------------- split-phase coalesced --

PlsEpochExchange::PlsEpochExchange(comm::Communicator& comm,
                                   ShardStore& store, std::uint64_t seed,
                                   std::size_t epoch, double q,
                                   std::size_t global_min_shard,
                                   const PayloadFn* payload,
                                   const DepositFn* deposit,
                                   const ExchangeRobustness* robust,
                                   ExchangeScratch* scratch)
    : comm_(comm),
      store_(store),
      epoch_(epoch),
      payload_(payload),
      deposit_(deposit),
      robust_(robust),
      s_(scratch != nullptr ? scratch : &own_scratch_) {
  DSHUF_CHECK(exchange_wire() == ExchangeWire::kCoalesced,
              "PlsEpochExchange drives the coalesced wire; use "
              "run_pls_exchange_epoch for the per-sample wire");
  rank_ = comm.rank();
  m_ = comm.size();
  quota_ = exchange_quota(global_min_shard, q);
  trivial_ = quota_ == 0 || m_ <= 1;
  if (trivial_) return;

  if (robust_ == nullptr) {
    DSHUF_CHECK(!comm.fault_injection_enabled(),
                "the fast-path exchange cannot survive fault injection — "
                "pass an ExchangeRobustness budget");
  } else {
    DSHUF_CHECK_GT(robust_->max_attempts, 0, "need at least one send attempt");
  }

  // Spans from this rank thread land on their own trace lane, and every
  // log line it emits carries the (rank, epoch) it was working for. The
  // epoch span stays open until finish() — in an overlapped epoch it
  // brackets the whole in-flight window (see the header note).
  obs::Tracer::set_thread_track(rank_);
  if (obs::Tracer::instance().enabled()) {
    obs::Tracer::set_thread_name("rank " + std::to_string(rank_));
  }
  log_ctx_.emplace(rank_, static_cast<std::int64_t>(epoch));
  epoch_span_.emplace("exchange.epoch");
  epoch_span_->attr("epoch", std::to_string(epoch))
      .attr("rank", std::to_string(rank_));

  // Every rank recomputes (or fetches — see plan_for_epoch) the identical
  // plan from the shared seed — Algorithm 1's "all workers use the same
  // random seed". The scratch (a caller-provided one in the steady state)
  // reuses last epoch's tables.
  ExchangeScratch& s = *s_;
  const ExchangePlan& plan = plan_for_epoch(seed, epoch, m_, quota_, s);
  pick_permutation_into(seed, epoch, rank_, store.size(), s.picks);
  DSHUF_CHECK_GE(store.size(), quota_,
                 "rank " << rank_
                         << " shard smaller than the exchange quota");
  s.outgoing.resize(quota_);
  for (std::size_t i = 0; i < quota_; ++i) {
    s.outgoing[i] = store.ids()[s.picks[i]];
  }

  tag_base_ = epoch_tag_base(epoch, quota_, m_);
  out_.rounds = quota_;
  build_peer_routing(plan, rank_, quota_, s);
  frame_cap_ = frame_capacity_bound(quota_, s.payload_high_water);
  s.frames.resize(s.recv_peers.size());
  s.views.resize(s.recv_peers.size());
  if (robust_ != nullptr) {
    send_state_.assign(s.send_peers.size(), SendPeer{});
    recv_state_.assign(s.recv_peers.size(), RecvPeer{});
    frame_ok_.assign(s.recv_peers.size(), 0);
    wires_.resize(s.send_peers.size());
  }
}

const PayloadFn& PlsEpochExchange::payload_fn() const {
  static const PayloadFn kNoPayload;
  return payload_ != nullptr ? *payload_ : kNoPayload;
}

const DepositFn& PlsEpochExchange::deposit_fn() const {
  static const DepositFn kNoDeposit;
  return deposit_ != nullptr ? *deposit_ : kNoDeposit;
}

void PlsEpochExchange::post() {
  DSHUF_CHECK(!posted_, "PlsEpochExchange::post() called twice");
  posted_ = true;
  if (trivial_) return;
  obs::SpanGuard post_span("exchange.post");
  post_span.attr("epoch", std::to_string(epoch_))
      .attr("rank", std::to_string(rank_));
  ExchangeScratch& s = *s_;
  const PayloadFn& payload = payload_fn();

  auto& tracer = obs::Tracer::instance();
  if (robust_ == nullptr) {
    // Fire-and-forget frames into pooled buffers (Algorithm 1 lines 2-6
    // with the coalesced wire); finish() blocks on the matching receives.
    for (std::size_t k = 0; k < s.send_peers.size(); ++k) {
      const int p = s.send_peers[k];
      auto buf = comm_.pool().acquire(frame_cap_);
      pack_frame_for_peer(buf, epoch_, rank_, p,
                          csr_slice(s.send_rounds, s.send_off, k), payload,
                          s, out_);
      out_.bytes_sent += buf.size();
      out_.bytes_offered += buf.size();
      ++out_.msgs_sent;
      comm_.send(p, frame_data_tag(tag_base_, quota_, rank_),
                 std::move(buf));
      if (tracer.enabled()) {
        tracer.flow_point("exchange.frame",
                          frame_flow_id(epoch_, rank_, p),
                          obs::FlowPhase::kSend,
                          {{"epoch", std::to_string(epoch_)}});
      }
    }
    return;
  }

  // Robust mode: keep a master copy of each frame for retransmission and
  // fire attempt 1. Retry/deadline clocks are anchored at finish() entry
  // (see the header note), so nothing times out under a long compute.
  for (std::size_t k = 0; k < s.send_peers.size(); ++k) {
    const int p = s.send_peers[k];
    auto& wire = wires_[k];
    wire.clear();
    wire.reserve(frame_cap_);
    pack_frame_for_peer(wire, epoch_, rank_, p,
                        csr_slice(s.send_rounds, s.send_off, k), payload, s,
                        out_);
    out_.bytes_offered += wire.size();
    auto buf = comm_.pool().acquire(wire.size());
    buf.assign(wire.begin(), wire.end());
    comm_.send(p, frame_data_tag(tag_base_, quota_, rank_), std::move(buf));
    if (tracer.enabled()) {
      tracer.flow_point("exchange.frame", frame_flow_id(epoch_, rank_, p),
                        obs::FlowPhase::kSend,
                        {{"epoch", std::to_string(epoch_)}});
    }
    ++out_.msgs_sent;
    out_.bytes_sent += wire.size();
    send_state_[k].attempts = 1;
  }
}

void PlsEpochExchange::finish_fast() {
  ExchangeScratch& s = *s_;
  // One blocking receive per sending peer; arrival order is free because
  // each frame parks in the mailbox until its (source, tag) receive runs.
  for (std::size_t k = 0; k < s.recv_peers.size(); ++k) {
    const int p = s.recv_peers[k];
    s.frames[k] = comm_.recv(p, frame_data_tag(tag_base_, quota_, p));
    s.views[k] =
        checked_frame_view(s.frames[k], epoch_, recv_slot_count(s, k), p);
  }

  out_.recvs_committed = stage_frames_in_round_order(
      store_, quota_, deposit_fn(), s, nullptr);
  for (SampleId id : s.outgoing) store_.remove_id(id);
  out_.sends_committed = quota_;

  // Frames are fully staged — recycle their buffers.
  for (std::size_t k = 0; k < s.recv_peers.size(); ++k) {
    comm_.pool().release(std::move(s.frames[k].payload));
  }
}

// Retry/timeout protocol, coalesced wire: the DATA/ACK handshake runs per
// PEER FRAME instead of per round. This is failure-equivalent to the
// per-sample handshake because commits still come from the receivers'
// reconciliation bitmap, not from ACKs — a lost frame simply falls back a
// whole peer's worth of rounds at once (the bitmap is per ORIGIN rank,
// which decides exactly the same set because a frame carries all of an
// origin's rounds or none of them).
//
// Clocks are Communicator::now_us() microseconds and pauses go through
// Communicator::backoff() — see run_robust_per_sample's note on why.
void PlsEpochExchange::finish_robust() {
  ExchangeScratch& s = *s_;
  const ExchangeRobustness& robust = *robust_;

  const std::uint64_t fstart = comm_.now_us();
  const std::uint64_t recv_deadline_at =
      fstart + static_cast<std::uint64_t>(robust.recv_deadline.count());
  // Unfinished send + receive duties (per peer slot).
  std::size_t open = s.recv_peers.size() + s.send_peers.size();
  for (auto& ss : send_state_) {
    ss.next_retry_us =
        fstart + static_cast<std::uint64_t>(robust.ack_timeout.count());
  }

  while (open > 0) {
    bool progressed = false;
    const std::uint64_t now = comm_.now_us();
    for (std::size_t k = 0; k < s.recv_peers.size(); ++k) {
      auto& rs = recv_state_[k];
      if (rs.done) continue;
      const int p = s.recv_peers[k];
      if (auto msg = comm_.poll(p, frame_data_tag(tag_base_, quota_, p))) {
        s.frames[k] = std::move(*msg);
        s.views[k] = checked_frame_view(s.frames[k], epoch_,
                                        recv_slot_count(s, k), p);
        rs.done = true;
        rs.ok = true;
        frame_ok_[k] = 1;
        comm_.send(p, frame_ack_tag(tag_base_, quota_, p), {});
        ++out_.msgs_sent;
        --open;
        progressed = true;
      } else if (now >= recv_deadline_at) {
        // LS fallback for every round this peer owed us; a late frame
        // drains as a stray after the fence.
        rs.done = true;
        out_.recv_fallbacks += recv_slot_count(s, k);
        LOG_DEBUG << "frame from rank " << p << " missed the deadline; "
                  << "its samples stay with the sender";
        --open;
        progressed = true;
      }
    }
    for (std::size_t k = 0; k < s.send_peers.size(); ++k) {
      auto& ss = send_state_[k];
      if (ss.done) continue;
      const int p = s.send_peers[k];
      if (comm_.poll(p, frame_ack_tag(tag_base_, quota_, rank_))) {
        ss.done = true;
        --open;
        progressed = true;
      } else if (now >= ss.next_retry_us) {
        if (ss.attempts >= robust.max_attempts) {
          // Give up retrying. The frame may still commit if an earlier
          // attempt landed — the reconciliation bitmap decides.
          ss.done = true;
          --open;
          LOG_DEBUG << "frame to rank " << p << " exhausted " << ss.attempts
                    << " attempts; reconciliation decides";
        } else {
          const auto& wire = wires_[k];
          auto buf = comm_.pool().acquire(wire.size());
          buf.assign(wire.begin(), wire.end());
          comm_.send(p, frame_data_tag(tag_base_, quota_, rank_),
                     std::move(buf));
          // The retransmitted bytes carry the identical trace context,
          // so this is a step on the SAME flow, not a new arrow.
          auto& tracer = obs::Tracer::instance();
          if (tracer.enabled()) {
            tracer.flow_point("exchange.frame",
                              frame_flow_id(epoch_, rank_, p),
                              obs::FlowPhase::kStep,
                              {{"epoch", std::to_string(epoch_)}});
          }
          ++out_.msgs_sent;
          out_.bytes_sent += wire.size();
          ++ss.attempts;
          ++out_.retries;
          ss.next_retry_us = now + backoff_us(robust, ss.attempts);
        }
        progressed = true;
      }
    }
    if (open > 0 && !progressed) {
      comm_.backoff(robust.poll_interval);
    }
  }

  // Stage whatever arrived, in round order (skipping rounds whose frame
  // fell back) — identical append order to the per-sample robust path
  // under the same commit pattern.
  out_.recvs_committed = stage_frames_in_round_order(
      store_, quota_, deposit_fn(), s, &frame_ok_);

  // Quiesce the fabric, then drain late arrivals and duplicate frames.
  {
    obs::SpanGuard fence_span("exchange.fence");
    comm_.barrier();
    comm_.fence_faults();
    while (auto stray = comm_.poll(comm::kAnySource, comm::kAnyTag)) {
      ++out_.strays_drained;
      if (is_epoch_frame_data_tag(stray->tag, tag_base_, quota_, m_)) {
        const int origin =
            origin_of_frame_data_tag(stray->tag, tag_base_, quota_);
        const std::size_t slot = recv_slot_of(s, origin);
        if (slot != static_cast<std::size_t>(-1) && recv_state_[slot].ok) {
          // A duplicate copy of a frame we already staged: every sample in
          // it is a suppressed duplicate (the per-sample wire counts the
          // same samples one message at a time).
          out_.duplicates_suppressed += parse_frame(stray->payload).count();
        }
      }
    }
    DSHUF_HISTOGRAM_US("exchange.fence_wait_us").observe(fence_span.finish());
  }

  // Reconciliation: one received-bit per ORIGIN rank. A frame carries all
  // of an origin's rounds or none, so the per-origin bit decides exactly
  // the same commits the per-round bitmap would.
  DSHUF_SPAN("exchange.reconcile");
  std::vector<std::byte> received_bits(static_cast<std::size_t>(m_));
  for (std::size_t k = 0; k < s.recv_peers.size(); ++k) {
    received_bits[static_cast<std::size_t>(s.recv_peers[k])] =
        recv_state_[k].ok ? std::byte{1} : std::byte{0};
  }
  const auto all_bits = comm_.allgather(std::move(received_bits));
  const ExchangePlan& plan = *s.active;
  for (std::size_t i = 0; i < quota_; ++i) {
    const auto dest = static_cast<std::size_t>(plan.dest(i, rank_));
    DSHUF_CHECK_EQ(all_bits[dest].size(), static_cast<std::size_t>(m_),
                   "reconciliation bitmap length mismatch");
    if (all_bits[dest][static_cast<std::size_t>(rank_)] != std::byte{0}) {
      store_.remove_id(s.outgoing[i]);
      ++out_.sends_committed;
    } else {
      ++out_.send_fallbacks;
      LOG_DEBUG << "round " << i << " not received by rank "
                << plan.dest(i, rank_) << "; keeping sample locally";
    }
  }

  for (std::size_t k = 0; k < s.recv_peers.size(); ++k) {
    if (frame_ok_[k] == 0) continue;
    comm_.pool().release(std::move(s.frames[k].payload));
  }
}

ExchangeOutcome PlsEpochExchange::finish() {
  DSHUF_CHECK(posted_, "PlsEpochExchange::finish() before post()");
  DSHUF_CHECK(!finished_, "PlsEpochExchange::finish() called twice");
  finished_ = true;
  if (trivial_) return {};

  if (robust_ == nullptr) {
    finish_fast();
  } else {
    finish_robust();
  }

  fold_outcome_counters(out_);
  // bytes_offered is fault-schedule independent, so this attribute is
  // stable across reruns; retransmitted bytes live in the counter above.
  epoch_span_->attr("bytes", std::to_string(out_.bytes_offered));
  epoch_span_->finish();
  log_ctx_.reset();
  return out_;
}

ExchangeOutcome run_pls_exchange_epoch(comm::Communicator& comm,
                                       ShardStore& store, std::uint64_t seed,
                                       std::size_t epoch, double q,
                                       std::size_t global_min_shard,
                                       const PayloadFn& payload,
                                       const DepositFn& deposit,
                                       const ExchangeRobustness* robust,
                                       ExchangeScratch* scratch) {
  // Read the wire mode exactly once so this epoch cannot tear across a
  // concurrent flip (see exchange_wire.hpp's thread model).
  const ExchangeWire wire = exchange_wire();
  if (wire == ExchangeWire::kCoalesced) {
    // The split-phase object run back-to-back IS the monolithic epoch.
    PlsEpochExchange exchange(comm, store, seed, epoch, q, global_min_shard,
                              &payload, &deposit, robust, scratch);
    exchange.post();
    return exchange.finish();
  }

  const int rank = comm.rank();
  const int m = comm.size();
  const std::size_t quota = exchange_quota(global_min_shard, q);
  if (quota == 0 || m <= 1) return {};

  // Spans from this rank thread land on their own trace lane, and every
  // log line it emits carries the (rank, epoch) it was working for.
  obs::Tracer::set_thread_track(rank);
  if (obs::Tracer::instance().enabled()) {
    obs::Tracer::set_thread_name("rank " + std::to_string(rank));
  }
  ScopedLogContext log_ctx(rank, static_cast<std::int64_t>(epoch));
  obs::SpanGuard epoch_span("exchange.epoch",
                            {{"epoch", std::to_string(epoch)},
                             {"rank", std::to_string(rank)}});

  // Every rank recomputes (or fetches) the identical plan from the shared
  // seed — Algorithm 1's "all workers use the same random seed". The
  // scratch (a caller-provided one in the steady state) reuses last
  // epoch's tables.
  ExchangeScratch local_scratch;
  ExchangeScratch& s = scratch != nullptr ? *scratch : local_scratch;
  plan_for_epoch(seed, epoch, m, quota, s);
  pick_permutation_into(seed, epoch, rank, store.size(), s.picks);
  DSHUF_CHECK_GE(store.size(), quota,
                 "rank " << rank << " shard smaller than the exchange quota");

  s.outgoing.resize(quota);
  for (std::size_t i = 0; i < quota; ++i) {
    s.outgoing[i] = store.ids()[s.picks[i]];
  }

  ExchangeOutcome out;
  if (robust == nullptr) {
    DSHUF_CHECK(!comm.fault_injection_enabled(),
                "the fast-path exchange cannot survive fault injection — "
                "pass an ExchangeRobustness budget");
    out = run_fast_per_sample(comm, store, epoch, payload, deposit, s);
  } else {
    out = run_robust_per_sample(comm, store, epoch, payload, deposit,
                                *robust, s);
  }

  fold_outcome_counters(out);

  // bytes_offered is fault-schedule independent, so this attribute is
  // stable across reruns; retransmitted bytes live in the counter above.
  epoch_span.attr("bytes", std::to_string(out.bytes_offered));
  return out;
}

}  // namespace dshuf::shuffle
