#include "shuffle/mpi_exchange.hpp"

#include <cstring>

#include "shuffle/exchange_plan.hpp"
#include "shuffle/shuffler.hpp"

namespace dshuf::shuffle {

namespace {

std::vector<std::byte> encode_sample(SampleId id,
                                     const std::vector<std::byte>& payload) {
  std::vector<std::byte> out(sizeof(SampleId) + payload.size());
  std::memcpy(out.data(), &id, sizeof(SampleId));
  if (!payload.empty()) {
    std::memcpy(out.data() + sizeof(SampleId), payload.data(),
                payload.size());
  }
  return out;
}

SampleId decode_sample_id(const std::vector<std::byte>& buf) {
  DSHUF_CHECK_GE(buf.size(), sizeof(SampleId), "short exchange message");
  SampleId id = 0;
  std::memcpy(&id, buf.data(), sizeof(SampleId));
  return id;
}

}  // namespace

void run_pls_exchange_epoch(comm::Communicator& comm, ShardStore& store,
                            std::uint64_t seed, std::size_t epoch, double q,
                            std::size_t global_min_shard,
                            const PayloadFn& payload,
                            const DepositFn& deposit) {
  const int rank = comm.rank();
  const int m = comm.size();
  const std::size_t quota = exchange_quota(global_min_shard, q);
  if (quota == 0 || m <= 1) return;

  // Every rank recomputes the identical plan from the shared seed —
  // Algorithm 1's "all workers use the same random seed".
  const ExchangePlan plan(seed, epoch, m, quota);
  const auto picks = pick_permutation(seed, epoch, rank, store.size());
  DSHUF_CHECK_GE(store.size(), quota,
                 "rank " << rank << " shard smaller than the exchange quota");

  // Algorithm 1 lines 2-6: isend the p[i]-th sample to dest_i[rank],
  // irecv from ANY_SOURCE. Tag = round index keeps rounds aligned.
  std::vector<SampleId> outgoing(quota);
  std::vector<comm::Request> requests;
  requests.reserve(2 * quota);
  for (std::size_t i = 0; i < quota; ++i) {
    outgoing[i] = store.ids()[picks[i]];
    const int dest = plan.dest(i, rank);
    std::vector<std::byte> body =
        payload ? payload(outgoing[i]) : std::vector<std::byte>{};
    requests.push_back(
        comm.isend(dest, static_cast<int>(i),
                   encode_sample(outgoing[i], body)));
    requests.push_back(comm.irecv(comm::kAnySource, static_cast<int>(i)));
  }
  // Algorithm 1 line 7: wait for all outstanding requests.
  comm::wait_all(requests);

  // Stage received samples (receive requests are the odd entries), then
  // clean transmitted ones from local storage — the (1+Q)-capacity window.
  for (std::size_t i = 0; i < quota; ++i) {
    const auto& msg = requests[2 * i + 1].message();
    const SampleId got = decode_sample_id(msg.payload);
    store.add(got);
    if (deposit) {
      deposit(got, std::span<const std::byte>(
                       msg.payload.data() + sizeof(SampleId),
                       msg.payload.size() - sizeof(SampleId)));
    }
  }
  for (SampleId id : outgoing) store.remove_id(id);
}

}  // namespace dshuf::shuffle
