#include "shuffle/types.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace dshuf::shuffle {

std::string to_string(Strategy s) {
  switch (s) {
    case Strategy::kGlobal:
      return "global";
    case Strategy::kLocal:
      return "local";
    case Strategy::kPartial:
      return "partial";
    case Strategy::kUncontrolled:
      return "uncontrolled";
  }
  return "?";
}

Strategy parse_strategy(const std::string& s) {
  if (s == "global") return Strategy::kGlobal;
  if (s == "local") return Strategy::kLocal;
  if (s == "partial") return Strategy::kPartial;
  if (s == "uncontrolled") return Strategy::kUncontrolled;
  DSHUF_CHECK(false, "unknown strategy: " << s);
}

std::string strategy_label(Strategy s, double q) {
  if (s != Strategy::kPartial && s != Strategy::kUncontrolled) {
    return to_string(s);
  }
  // Up to three decimals, trailing zeros stripped: 0.3, 0.25, 0.125.
  std::string num = fmt_double(q, 3);
  while (!num.empty() && num.back() == '0') num.pop_back();
  if (!num.empty() && num.back() == '.') num.pop_back();
  return to_string(s) + "-" + num;
}

}  // namespace dshuf::shuffle
