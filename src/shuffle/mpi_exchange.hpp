// Message-passing execution of Algorithm 1.
//
// This is the paper's exchange as it would run on MPI: the destination
// permutations come from the SHARED-seed ExchangePlan, which every rank
// recomputes locally — no global coordination is exchanged, only samples.
//
// Two wire formats (see shuffle/exchange_wire.hpp, runtime-switchable):
//
//   * ExchangeWire::kCoalesced (default): all of an epoch's rounds bound
//     for peer p travel as ONE frame (header + packed ids + payloads), so
//     an epoch costs O(peers) messages instead of O(quota). Frames pack
//     into pooled comm buffers and the deposit path hands out span views
//     into the received frame — with a warmed-up ExchangeScratch the fast
//     path performs zero heap allocations per epoch.
//   * ExchangeWire::kPerSample: the original encoding — each round is its
//     own message (tag = round index, receiver aligns rounds by tag).
//
// Both wires produce bit-identical post-epoch shard contents; the
// equivalence suite asserts it across seeds and quotas.
//
// Two execution modes:
//
//   * Fast path (robust == nullptr): fire-and-wait (Algorithm 1 lines
//     2-7). Assumes a perfect fabric; refuses to run over a World with
//     fault injection enabled.
//   * Robust path (pass an ExchangeRobustness): DATA/ACK with retry +
//     exponential backoff, receive deadlines, duplicate suppression, and
//     an end-of-epoch reconciliation over the reliable control plane
//     (collectives). Per-sample wire ACKs/retries each round; coalesced
//     wire ACKs/retries each per-peer frame — failure-equivalent, because
//     commit decisions are NOT taken from ACKs (those are lossy too) but
//     from the receivers' received-bitmaps, allgathered reliably at epoch
//     end. A round/frame that exhausts its budget falls back to keeping
//     the sample(s) at the SENDER (LS fallback); the receiver's word is
//     the single source of truth, so sender and receiver always agree and
//     no sample is ever lost or duplicated, whatever the fault schedule.
//     With no drops (delay/reorder/duplication only) every round commits
//     and the result is bit-identical to the fault-free exchange and to
//     the sequential PartialLocalShuffler.
//
// The sequential PartialLocalShuffler computes the same exchange without
// threads; the test suite asserts both produce identical shard contents.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>

#include "comm/comm.hpp"
#include "obs/trace.hpp"
#include "shuffle/exchange_plan.hpp"
#include "shuffle/exchange_wire.hpp"
#include "shuffle/shard_store.hpp"
#include "shuffle/types.hpp"
#include "util/log.hpp"

namespace dshuf::shuffle {

/// Optional payload provider: APPENDS the serialized bytes of a sample to
/// `out` (which already holds the wire prefix — never resize it
/// downward). Writing into the caller's buffer lets the exchange pack
/// frames without an intermediate vector per sample. When null, messages
/// carry only the 4-byte sample id.
using PayloadFn = std::function<void(SampleId, std::vector<std::byte>& out)>;
/// Optional payload consumer invoked for each received sample. The span
/// points into the received wire buffer — copy it out if it must outlive
/// the call.
using DepositFn = std::function<void(SampleId, std::span<const std::byte>)>;

/// Retry/timeout budget for the robust exchange. Defaults are sized for
/// the in-process fabric with injected delays up to a few milliseconds;
/// scale them together with the fault magnitudes.
struct ExchangeRobustness {
  /// How long to wait for a DATA message's ACK before retransmitting it.
  std::chrono::microseconds ack_timeout{std::chrono::milliseconds(40)};
  /// Total DATA transmissions per round/frame (first send + retries).
  int max_attempts = 4;
  /// Multiplier applied to ack_timeout after each retransmission.
  double backoff = 2.0;
  /// Budget for incoming samples, measured from the start of the epoch's
  /// exchange; expiry marks the round(s) as receive fallbacks.
  std::chrono::microseconds recv_deadline{std::chrono::milliseconds(500)};
  /// Sleep between progress-loop scans.
  std::chrono::microseconds poll_interval{std::chrono::microseconds(200)};
};

/// Per-rank result of one epoch's exchange.
struct ExchangeOutcome {
  std::size_t rounds = 0;             ///< quota for this epoch
  std::size_t sends_committed = 0;    ///< our samples the receiver got
  std::size_t send_fallbacks = 0;     ///< our samples kept local (LS fallback)
  std::size_t recvs_committed = 0;    ///< samples we received and staged
  std::size_t recv_fallbacks = 0;     ///< expected samples that never came
  std::size_t retries = 0;            ///< DATA retransmissions (per message)
  std::size_t duplicates_suppressed = 0;  ///< redundant sample copies discarded
  std::size_t strays_drained = 0;     ///< late/duplicate messages drained
  /// Point-to-point messages sent (DATA first attempts + retransmits +
  /// ACKs) — in lockstep with the comm.isend counter.
  std::size_t msgs_sent = 0;
  /// First-attempt wire framing bytes: frame headers/offset tables and the
  /// 4-byte sample ids (per-sample wire: just the ids).
  std::size_t bytes_header = 0;
  /// First-attempt sample payload bytes — the quantity the analytic
  /// traffic model (shuffle/traffic.hpp) prices as Q * D / M per worker.
  std::size_t bytes_body = 0;
  std::size_t bytes_sent = 0;  ///< DATA bytes on the wire, retransmits included
  /// First-attempt DATA bytes only (== bytes_header + bytes_body).
  /// Independent of the fault schedule, so trace attributes built from it
  /// are reproducible.
  std::size_t bytes_offered = 0;

  /// Merge into epoch stats (aggregates across ranks).
  void accumulate_into(ExchangeStats& stats) const {
    stats.retries += retries;
    stats.send_fallbacks += send_fallbacks;
    stats.recv_fallbacks += recv_fallbacks;
    stats.duplicates_suppressed += duplicates_suppressed;
  }
};

/// Reusable per-rank working storage for run_pls_exchange_epoch. Optional:
/// passing the same instance every epoch lets the exchange reuse the plan
/// tables, routing lists, and staging cursors, which — together with the
/// comm buffer pool — is what makes the steady-state fast path
/// allocation-free (tests/test_exchange_alloc.cpp asserts the zero).
///
/// Peer routing is a CSR over the peers that actually exchange traffic
/// with this rank (at most min(M, quota) of them), NOT dense over all M
/// ranks: at M=4096 a dense per-peer layout costs O(M) per rank = O(M^2)
/// across the world, which is what previously made paper-scale worlds
/// unrepresentable. All peer-indexed arrays below are indexed by SLOT
/// (position in send_peers / recv_peers, each sorted ascending by rank).
struct ExchangeScratch {
  ExchangePlan plan;  ///< in-place storage (used when interning is off)
  std::shared_ptr<const ExchangePlan> interned;  ///< shared (interning on)
  const ExchangePlan* active = nullptr;  ///< the epoch's plan, either way
  std::vector<std::uint32_t> picks;
  std::vector<SampleId> outgoing;
  std::vector<int> send_peers;  ///< ranks we send a frame to, ascending
  std::vector<int> recv_peers;  ///< ranks that send us a frame, ascending
  std::vector<std::uint32_t> send_off;  ///< [slot] -> send_rounds range
  std::vector<std::uint32_t> recv_off;  ///< [slot] -> recv_rounds range
  std::vector<std::uint32_t> send_rounds;  ///< grouped by slot, round order
  std::vector<std::uint32_t> recv_rounds;  ///< grouped by slot, round order
  std::vector<std::pair<int, std::uint32_t>> route_pairs;  ///< build scratch
  std::vector<std::uint32_t> round_slot;  ///< [round] -> recv slot of source
  std::vector<comm::Message> frames;      ///< received, [recv slot]
  std::vector<FrameView> views;           ///< parsed, [recv slot]
  std::vector<std::uint32_t> cursor;      ///< staging, [recv slot]
  /// Largest per-sample payload seen; sizes the pooled-buffer capacity
  /// hint so a steady-state epoch can never outgrow its frame buffer.
  std::size_t payload_high_water = 0;
};

/// Run one epoch of the PLS exchange for THIS rank. `store` is the rank's
/// local shard store; `global_min_shard` must be the minimum shard size
/// across ranks (all ranks already know it — shard sizes are static on a
/// perfect fabric, and under faults the chaos harness re-agrees on it via
/// a collective). After return the store holds the post-exchange shard
/// (received samples added, committed-transmitted ones removed) but is NOT
/// locally re-shuffled; the caller owns that step. Pass `robust` to enable
/// the retry/timeout protocol (required when the World injects faults) and
/// `scratch` to reuse working storage across epochs.
ExchangeOutcome run_pls_exchange_epoch(
    comm::Communicator& comm, ShardStore& store, std::uint64_t seed,
    std::size_t epoch, double q, std::size_t global_min_shard,
    const PayloadFn& payload = nullptr, const DepositFn& deposit = nullptr,
    const ExchangeRobustness* robust = nullptr,
    ExchangeScratch* scratch = nullptr);

/// Split-phase epoch exchange (coalesced wire only) — the overlap
/// primitive: post() fires this rank's outgoing frames, the caller runs
/// its batch compute, and finish() collects/reconciles once the compute
/// is done, so frame transit hides under compute instead of serialising
/// after it (the paper's "shuffling cost judged against its overlap with
/// training"). run_pls_exchange_epoch is exactly construct + post +
/// finish back-to-back, and both produce bit-identical shards.
///
/// Thread contract: construct and finish() on the RANK's thread (they
/// touch the rank's log context, trace track, and blocking receives);
/// post() may run anywhere — typically submitted to the task scheduler as
/// a comm task — but must have RETURNED before finish() is called (the
/// driver waits on its task group). The payload/deposit/robust/scratch
/// pointers are borrowed: the caller keeps them alive until finish()
/// returns. Robust retry/deadline clocks are anchored at finish() entry,
/// not at post(), so a long compute phase between the two never burns the
/// retry budget or expires the receive deadline.
///
/// The "exchange.epoch" span opens at construction and closes at
/// finish(), so in an overlapped epoch it brackets the whole in-flight
/// window — which is precisely what the dshuf_trace overlap report
/// intersects with compute spans to measure hidden exchange time.
class PlsEpochExchange {
 public:
  PlsEpochExchange(comm::Communicator& comm, ShardStore& store,
                   std::uint64_t seed, std::size_t epoch, double q,
                   std::size_t global_min_shard,
                   const PayloadFn* payload = nullptr,
                   const DepositFn* deposit = nullptr,
                   const ExchangeRobustness* robust = nullptr,
                   ExchangeScratch* scratch = nullptr);
  PlsEpochExchange(const PlsEpochExchange&) = delete;
  PlsEpochExchange& operator=(const PlsEpochExchange&) = delete;

  /// Pack and fire this rank's outgoing frames (first attempts only).
  void post();

  /// Collect incoming frames, stage them, reconcile (robust mode), fold
  /// the obs counters, and return the epoch's outcome. Must follow
  /// post().
  ExchangeOutcome finish();

  /// True when the epoch exchanges nothing (quota 0 or a single rank);
  /// post()/finish() are then no-ops returning a default outcome.
  [[nodiscard]] bool trivial() const { return trivial_; }

 private:
  // Robust-mode per-peer state, slot-indexed (send slots and recv slots
  // separately — see ExchangeScratch's CSR layout). Retry clocks are
  // Communicator::now_us() microseconds, so the same protocol runs on wall
  // time under the threaded world and on virtual time under the
  // event-driven one.
  struct SendPeer {
    bool done = false;
    int attempts = 0;
    std::uint64_t next_retry_us = 0;
  };
  struct RecvPeer {
    bool done = false;
    bool ok = false;
  };

  void finish_fast();
  void finish_robust();
  [[nodiscard]] const PayloadFn& payload_fn() const;
  [[nodiscard]] const DepositFn& deposit_fn() const;

  comm::Communicator& comm_;
  ShardStore& store_;
  std::size_t epoch_;
  int rank_ = 0;
  int m_ = 0;
  std::size_t quota_ = 0;
  std::uint64_t tag_base_ = 0;
  std::size_t frame_cap_ = 0;
  const PayloadFn* payload_;
  const DepositFn* deposit_;
  const ExchangeRobustness* robust_;
  ExchangeScratch own_scratch_;  // used only when the caller passes none
  ExchangeScratch* s_;
  ExchangeOutcome out_;
  std::optional<ScopedLogContext> log_ctx_;
  std::optional<obs::SpanGuard> epoch_span_;
  // Robust-mode state (left empty on the fast path), slot-indexed.
  std::vector<SendPeer> send_state_;           // [send slot]
  std::vector<RecvPeer> recv_state_;           // [recv slot]
  std::vector<char> frame_ok_;                 // [recv slot]
  std::vector<std::vector<std::byte>> wires_;  // masters, [send slot]
  bool trivial_ = true;
  bool posted_ = false;
  bool finished_ = false;
};

}  // namespace dshuf::shuffle
