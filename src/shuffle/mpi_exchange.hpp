// Message-passing execution of Algorithm 1.
//
// This is the paper's exchange as it would run on MPI: each rank posts a
// non-blocking send per selected sample (tag = round index, so the
// receiver can align rounds) and a matching irecv from ANY_SOURCE, then
// waits for all requests (Algorithm 1 lines 2-7). The destination
// permutations come from the SHARED-seed ExchangePlan, which every rank
// recomputes locally — no global coordination is exchanged, only samples.
//
// The sequential PartialLocalShuffler computes the same exchange without
// threads; the test suite asserts both produce identical shard contents.
#pragma once

#include <cstdint>
#include <functional>

#include "comm/comm.hpp"
#include "shuffle/shard_store.hpp"
#include "shuffle/types.hpp"

namespace dshuf::shuffle {

/// Optional payload provider: returns the serialized bytes of a sample so
/// the exchange moves real data (e.g. from a file-backed store). When
/// null, messages carry only the 4-byte sample id.
using PayloadFn = std::function<std::vector<std::byte>(SampleId)>;
/// Optional payload consumer invoked for each received sample.
using DepositFn = std::function<void(SampleId, std::span<const std::byte>)>;

/// Run one epoch of the PLS exchange for THIS rank. `store` is the rank's
/// local shard store; `global_min_shard` must be the minimum shard size
/// across ranks (all ranks already know it — shard sizes are static).
/// After return the store holds the post-exchange shard (received samples
/// added, transmitted ones removed) but is NOT locally re-shuffled; the
/// caller owns that step.
void run_pls_exchange_epoch(comm::Communicator& comm, ShardStore& store,
                            std::uint64_t seed, std::size_t epoch, double q,
                            std::size_t global_min_shard,
                            const PayloadFn& payload = nullptr,
                            const DepositFn& deposit = nullptr);

}  // namespace dshuf::shuffle
