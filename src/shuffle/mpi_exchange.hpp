// Message-passing execution of Algorithm 1.
//
// This is the paper's exchange as it would run on MPI: each rank posts a
// non-blocking send per selected sample (tag = round index, so the
// receiver can align rounds) and a matching irecv, then waits for all
// requests (Algorithm 1 lines 2-7). The destination permutations come from
// the SHARED-seed ExchangePlan, which every rank recomputes locally — no
// global coordination is exchanged, only samples.
//
// Two execution modes:
//
//   * Fast path (robust == nullptr): the original fire-and-wait exchange.
//     Assumes a perfect fabric; refuses to run over a World with fault
//     injection enabled.
//   * Robust path (pass an ExchangeRobustness): per-round DATA/ACK with
//     retry + exponential backoff, receive deadlines, duplicate
//     suppression, and an end-of-epoch reconciliation over the reliable
//     control plane (collectives). A round that exhausts its budget falls
//     back to keeping the sample at the SENDER (LS fallback); the
//     receiver's received-bitmap — allgathered reliably — is the single
//     source of truth for which rounds committed, so sender and receiver
//     always agree and no sample is ever lost or duplicated, whatever the
//     fault schedule. With no drops (delay/reorder/duplication only) every
//     round commits and the result is bit-identical to the fault-free
//     exchange and to the sequential PartialLocalShuffler.
//
// The sequential PartialLocalShuffler computes the same exchange without
// threads; the test suite asserts both produce identical shard contents.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

#include "comm/comm.hpp"
#include "shuffle/shard_store.hpp"
#include "shuffle/types.hpp"

namespace dshuf::shuffle {

/// Optional payload provider: returns the serialized bytes of a sample so
/// the exchange moves real data (e.g. from a file-backed store). When
/// null, messages carry only the 4-byte sample id.
using PayloadFn = std::function<std::vector<std::byte>(SampleId)>;
/// Optional payload consumer invoked for each received sample.
using DepositFn = std::function<void(SampleId, std::span<const std::byte>)>;

/// Retry/timeout budget for the robust exchange. Defaults are sized for
/// the in-process fabric with injected delays up to a few milliseconds;
/// scale them together with the fault magnitudes.
struct ExchangeRobustness {
  /// How long to wait for a round's ACK before retransmitting its DATA.
  std::chrono::microseconds ack_timeout{std::chrono::milliseconds(40)};
  /// Total DATA transmissions per round (first send + retries).
  int max_attempts = 4;
  /// Multiplier applied to ack_timeout after each retransmission.
  double backoff = 2.0;
  /// Budget for a round's incoming sample, measured from the start of the
  /// epoch's exchange; expiry marks the round as a receive fallback.
  std::chrono::microseconds recv_deadline{std::chrono::milliseconds(500)};
  /// Sleep between progress-loop scans.
  std::chrono::microseconds poll_interval{std::chrono::microseconds(200)};
};

/// Per-rank result of one epoch's exchange.
struct ExchangeOutcome {
  std::size_t rounds = 0;             ///< quota for this epoch
  std::size_t sends_committed = 0;    ///< our samples the receiver got
  std::size_t send_fallbacks = 0;     ///< our samples kept local (LS fallback)
  std::size_t recvs_committed = 0;    ///< samples we received and staged
  std::size_t recv_fallbacks = 0;     ///< expected samples that never came
  std::size_t retries = 0;            ///< DATA retransmissions
  std::size_t duplicates_suppressed = 0;  ///< redundant copies discarded
  std::size_t strays_drained = 0;     ///< late/duplicate messages drained
  std::size_t bytes_sent = 0;  ///< DATA bytes on the wire, retransmits included
  /// First-attempt DATA bytes only (quota x wire size). Independent of the
  /// fault schedule, so trace attributes built from it are reproducible.
  std::size_t bytes_offered = 0;

  /// Merge into epoch stats (aggregates across ranks).
  void accumulate_into(ExchangeStats& stats) const {
    stats.retries += retries;
    stats.send_fallbacks += send_fallbacks;
    stats.recv_fallbacks += recv_fallbacks;
    stats.duplicates_suppressed += duplicates_suppressed;
  }
};

/// Run one epoch of the PLS exchange for THIS rank. `store` is the rank's
/// local shard store; `global_min_shard` must be the minimum shard size
/// across ranks (all ranks already know it — shard sizes are static on a
/// perfect fabric, and under faults the chaos harness re-agrees on it via
/// a collective). After return the store holds the post-exchange shard
/// (received samples added, committed-transmitted ones removed) but is NOT
/// locally re-shuffled; the caller owns that step. Pass `robust` to enable
/// the retry/timeout protocol (required when the World injects faults).
ExchangeOutcome run_pls_exchange_epoch(
    comm::Communicator& comm, ShardStore& store, std::uint64_t seed,
    std::size_t epoch, double q, std::size_t global_min_shard,
    const PayloadFn& payload = nullptr, const DepositFn& deposit = nullptr,
    const ExchangeRobustness* robust = nullptr);

}  // namespace dshuf::shuffle
