// Uncontrolled in-situ exchange — the DeepIO / Yang-&-Cong-style baseline
// the paper's related work criticises (Section VI-A): workers exchange
// samples with independently chosen random destinations, with no shared
// seed and hence no balance guarantee. "The local sampler introduces
// uncontrolled bias since the ratio of global to local shuffle portion is
// unidentified ... arbitrary communication bottlenecks can occur."
//
// Implemented as a full Shuffler so the simulator can train against it:
// each epoch every worker sends ceil(Q * shard_w) uniformly picked local
// samples to uniformly random destinations. Receive counts are whatever
// the dice produce, so shard sizes drift apart over epochs; the
// synchronous training loop is then gated by the SMALLEST shard
// (drop-last), which is exactly the operational cost of imbalance.
#pragma once

#include "shuffle/shard_store.hpp"
#include "shuffle/shuffler.hpp"
#include "shuffle/types.hpp"

namespace dshuf::shuffle {

class UncontrolledShuffler final : public Shuffler {
 public:
  UncontrolledShuffler(std::vector<std::vector<SampleId>> shards, double q,
                       std::uint64_t seed);

  void begin_epoch(std::size_t epoch) override;
  [[nodiscard]] const std::vector<SampleId>& local_order(
      int worker) const override;
  [[nodiscard]] int workers() const override {
    return static_cast<int>(stores_.size());
  }
  [[nodiscard]] std::string label() const override;
  [[nodiscard]] const ExchangeStats* last_stats() const override {
    return &stats_;
  }

  /// Imbalance after the last epoch: max shard / min shard.
  [[nodiscard]] double shard_imbalance() const;
  [[nodiscard]] std::size_t min_shard() const;
  [[nodiscard]] std::size_t max_shard() const;

 private:
  double q_;
  std::uint64_t seed_;
  std::vector<ShardStore> stores_;  // capacity-unbounded (imbalance drifts)
  std::vector<std::vector<SampleId>> orders_;
  ExchangeStats stats_;
};

}  // namespace dshuf::shuffle
