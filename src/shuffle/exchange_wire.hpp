// Wire formats for the PLS exchange, and the runtime switch between them.
//
// ExchangeWire::kPerSample is the original encoding: every round travels
// as its own message (4-byte SampleId + payload), costing `quota` messages
// per peer-pair per epoch. ExchangeWire::kCoalesced packs ALL of an
// epoch's rounds bound for peer p into ONE frame, so the per-message costs
// (mailbox hop, matching scan, allocation) are paid once per PEER instead
// of once per SAMPLE. The switch mirrors the KernelBackend pattern
// (tensor/tensor.hpp): a process-wide mode with a scoped override, so the
// equivalence suite can run the same exchange under both wires and assert
// bit-identical shards.
//
// Coalesced frame layout, v2 (little-endian, no padding):
//
//   offset  size            field
//   ------  --------------  ------------------------------------------
//   0       8               epoch     (u64; cross-checked on receive)
//   8       4               origin    (u32; sender rank — trace context,
//                                      cross-checked against the message
//                                      source on receive)
//   12      8               flow id   (u64; the sender's flow/send-span
//                                      id — frame_flow_id(epoch, origin,
//                                      dest). The receiver records its
//                                      recv flow point under this id, so
//                                      merged multi-rank traces draw the
//                                      frame's journey)
//   20      4               count     (u32; samples in this frame)
//   24      4 * (count+1)   offsets   (u32 each, relative to body start;
//                                      offsets[0] == 0, offsets[count]
//                                      == body size — sample j's bytes
//                                      are body[offsets[j], offsets[j+1]))
//   ...     body            per sample: SampleId (u32) + payload bytes
//
// Version note: v1 (PR 5) had no trace context — the origin/flow-id words
// were added in front of count. There is deliberately no version field on
// the wire: the per-epoch tag namespace already guarantees both endpoints
// of a tag window run the same build, and parse_frame's offsets[count] ==
// body-size cross-check rejects a frame framed under the other layout
// loudly rather than silently mis-staging it.
//
// The offsets table makes every sample's bytes addressable without
// parsing its predecessors, so the deposit path hands out std::span views
// straight into the received frame — zero copies, zero allocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "shuffle/types.hpp"
#include "util/error.hpp"

namespace dshuf::shuffle {

enum class ExchangeWire {
  kPerSample,  ///< one message per round (the original encoding)
  kCoalesced,  ///< one frame per peer per epoch (default)
};

/// Process-wide wire mode used by run_pls_exchange_epoch.
///
/// Thread model: an atomic with release/acquire semantics, mirroring
/// KernelBackend (tensor/tensor.hpp). run_pls_exchange_epoch reads the
/// mode exactly ONCE at entry, so a single epoch's exchange never tears
/// across a concurrent flip — every rank that started epoch e under wire
/// W completes it under W. A flip is only OBSERVED at a deterministic
/// point when ranks agree on it, so flip between epochs from the driving
/// thread (e.g. before World::run, whose spawn gives the happens-before
/// edge); flipping mid-epoch from an unrelated thread is memory-safe but
/// different ranks may then run different wires within one epoch, which
/// the frame parser rejects — and, without the robust protocol, a rank
/// can be left waiting for a message its mixed-wire peer never sent, so
/// liveness under such flips additionally requires an
/// ExchangeRobustness recv deadline.
[[nodiscard]] ExchangeWire exchange_wire();
void set_exchange_wire(ExchangeWire wire);
[[nodiscard]] const char* to_string(ExchangeWire wire);

/// RAII override, restoring the previous mode on destruction. Set it
/// BEFORE World::run — rank threads read the global mode (see the thread
/// model above).
class ScopedExchangeWire {
 public:
  explicit ScopedExchangeWire(ExchangeWire wire) : prev_(exchange_wire()) {
    set_exchange_wire(wire);
  }
  ~ScopedExchangeWire() { set_exchange_wire(prev_); }
  ScopedExchangeWire(const ScopedExchangeWire&) = delete;
  ScopedExchangeWire& operator=(const ScopedExchangeWire&) = delete;

 private:
  ExchangeWire prev_;
};

/// Fixed part of a frame: epoch + origin + flow id + count + the
/// (count+1)-entry offset table.
[[nodiscard]] constexpr std::size_t frame_header_bytes(std::size_t count) {
  return sizeof(std::uint64_t) + sizeof(std::uint32_t) +  // epoch, origin
         sizeof(std::uint64_t) + sizeof(std::uint32_t) +  // flow id, count
         sizeof(std::uint32_t) * (count + 1);
}

// Byte offsets of the fixed header fields (see the layout table above).
inline constexpr std::size_t kFrameEpochOff = 0;
inline constexpr std::size_t kFrameOriginOff = 8;
inline constexpr std::size_t kFrameFlowIdOff = 12;
inline constexpr std::size_t kFrameCountOff = 20;
inline constexpr std::size_t kFrameOffsetsOff = 24;

/// Flow id carried by the coalesced frame from `origin` to `dest` in
/// `epoch`: a pure function of seeded protocol state (38/13/13-bit
/// epoch|origin|dest split), so retransmissions reuse the id and golden
/// traces stay byte-identical across runs.
[[nodiscard]] constexpr std::uint64_t frame_flow_id(std::uint64_t epoch,
                                                    int origin, int dest) {
  return (epoch << 26) | (static_cast<std::uint64_t>(origin) << 13) |
         static_cast<std::uint64_t>(dest);
}

/// Flow id for round `round`'s per-sample message from `origin`. The
/// per-sample wire carries no extra context bytes: the id is derived from
/// the tag namespace (tag_base encodes the epoch, data_tag the round) plus
/// the message's source rank, all of which the receiver already has — so
/// both endpoints compute the identical id, and a retransmission (same
/// tag, same source) propagates the same context. Bit 63 keeps the
/// per-sample id space disjoint from frame_flow_id's.
[[nodiscard]] constexpr std::uint64_t sample_flow_id(std::uint64_t tag_base,
                                                     std::size_t round,
                                                     int origin) {
  return (1ull << 63) | ((tag_base + 2 * round) << 13) |
         static_cast<std::uint64_t>(origin);
}

/// Incremental frame encoder writing into a caller-provided buffer
/// (typically one acquired from comm::BufferPool). Usage:
///
///   FrameWriter w(buf, epoch, origin, flow_id, count);
///   for each sample: w.begin_sample(id); payload_fn(id, buf);
///   w.finish();
///
/// begin_sample records the running offset and appends the id; any bytes
/// the caller appends to `buf` before the next begin_sample/finish belong
/// to that sample's payload. finish() patches the offset table. Appends
/// within the buffer's reserved capacity never reallocate.
class FrameWriter {
 public:
  FrameWriter(std::vector<std::byte>& buf, std::uint64_t epoch, int origin,
              std::uint64_t flow_id, std::uint32_t count);

  /// Start sample `next` (must be called exactly `count` times).
  void begin_sample(SampleId id);

  /// Patch the offset table; the frame in `buf` is complete after this.
  void finish();

 private:
  std::vector<std::byte>* buf_;
  std::uint32_t count_;
  std::uint32_t next_ = 0;
};

/// Parsed view over a received frame. Does not own the bytes — keep the
/// backing buffer alive while using it.
class FrameView {
 public:
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// Sender rank carried in the trace context.
  [[nodiscard]] std::uint32_t origin() const { return origin_; }
  /// The sender's flow/send-span id (frame_flow_id of this frame).
  [[nodiscard]] std::uint64_t flow_id() const { return flow_id_; }
  [[nodiscard]] std::uint32_t count() const { return count_; }

  /// SampleId of sample `j`.
  [[nodiscard]] SampleId id(std::uint32_t j) const;
  /// Payload bytes of sample `j` (view into the frame; may be empty).
  [[nodiscard]] std::span<const std::byte> payload(std::uint32_t j) const;

 private:
  friend FrameView parse_frame(std::span<const std::byte> frame);
  std::uint64_t epoch_ = 0;
  std::uint32_t origin_ = 0;
  std::uint64_t flow_id_ = 0;
  std::uint32_t count_ = 0;
  const std::byte* offsets_ = nullptr;  // start of the offset table
  const std::byte* body_ = nullptr;     // start of the packed samples
  std::size_t body_size_ = 0;

  [[nodiscard]] std::uint32_t offset(std::uint32_t j) const;
};

/// Validate and parse a frame. Truncated or inconsistent frames (short
/// header, offsets out of range or non-monotonic, sample shorter than its
/// SampleId) fail a DSHUF_CHECK — a corrupt frame must never be staged.
[[nodiscard]] FrameView parse_frame(std::span<const std::byte> frame);

}  // namespace dshuf::shuffle
