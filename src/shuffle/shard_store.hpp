// Per-worker local sample store.
//
// Models the "predefined storage area" of Section III-A: the set of sample
// ids a worker currently holds, with capacity accounting against the
// paper's (1+Q) * N/M bound. During an exchange the store transiently
// holds both the not-yet-removed outgoing samples and the already-received
// incoming ones — that transient peak is exactly why PLS needs the
// (1+Q)-fold capacity, and the store records it so tests and benches can
// verify the bound.
#pragma once

#include <cstddef>
#include <vector>

#include "shuffle/types.hpp"

namespace dshuf::shuffle {

class ShardStore {
 public:
  ShardStore() = default;

  /// Initialise with the worker's initial shard; `capacity` of 0 means
  /// unlimited (global-shuffle workers are not capacity-checked).
  ShardStore(std::vector<SampleId> initial, std::size_t capacity);

  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const std::vector<SampleId>& ids() const { return ids_; }
  std::vector<SampleId>& mutable_ids() { return ids_; }

  /// Stage a received sample (appends; counts toward occupancy).
  void add(SampleId id);
  /// Remove the sample at `slot` (swap-with-last; order holders beware).
  void remove_slot(std::size_t slot);
  /// Remove by value; the id must be present.
  void remove_id(SampleId id);

  /// Highest occupancy observed since construction / reset_peak().
  [[nodiscard]] std::size_t peak_occupancy() const { return peak_; }
  void reset_peak() { peak_ = ids_.size(); }

  /// True if the store has ever exceeded its capacity (only possible when
  /// capacity enforcement is off).
  [[nodiscard]] bool over_capacity() const {
    return capacity_ != 0 && peak_ > capacity_;
  }

 private:
  void note_occupancy() {
    if (ids_.size() > peak_) peak_ = ids_.size();
    DSHUF_CHECK(capacity_ == 0 || ids_.size() <= capacity_,
                "shard store exceeded its capacity of "
                    << capacity_ << " (occupancy " << ids_.size() << ")");
  }

  std::vector<SampleId> ids_;
  std::size_t capacity_ = 0;
  std::size_t peak_ = 0;
};

/// The paper's PLS capacity bound: floor((1 + q) * shard) rounded up by the
/// exchange quota granularity, i.e. shard + quota.
std::size_t pls_capacity(std::size_t shard_size, double q);

}  // namespace dshuf::shuffle
