// Per-worker local sample store.
//
// Models the "predefined storage area" of Section III-A: the set of sample
// ids a worker currently holds, with capacity accounting against the
// paper's (1+Q) * N/M bound. During an exchange the store transiently
// holds both the not-yet-removed outgoing samples and the already-received
// incoming ones — that transient peak is exactly why PLS needs the
// (1+Q)-fold capacity, and the store records it so tests and benches can
// verify the bound.
//
// Removal is indexed: a pluggable io::SlotIndex mapping id -> packed
// (first index << 32 | count) makes remove_id amortized O(1) instead of
// a linear scan, while keeping the observable ids() sequence
// bit-identical to the scan-based removal (first occurrence replaced by
// the last element). The backend follows the process-wide
// io::slot_index_kind() — open-addressing by default, or the learned
// piecewise-linear index under ScopedSlotIndex — and is (re)built lazily:
// handing out mutable_ids() invalidates it, so a steady-state epoch
// (shuffle, add quota, remove quota) costs one O(n) rebuild plus O(1)
// per operation and, once warmed, no allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "io/slot_index.hpp"
#include "shuffle/types.hpp"

namespace dshuf::shuffle {

class ShardStore {
 public:
  ShardStore() = default;

  /// Initialise with the worker's initial shard; `capacity` of 0 means
  /// unlimited (global-shuffle workers are not capacity-checked).
  ShardStore(std::vector<SampleId> initial, std::size_t capacity);

  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const std::vector<SampleId>& ids() const { return ids_; }
  /// Direct mutable access (the post-exchange local shuffle permutes the
  /// shard in place). Invalidates the removal index until its next use.
  std::vector<SampleId>& mutable_ids() {
    index_dirty_ = true;
    return ids_;
  }

  /// Stage a received sample (appends; counts toward occupancy).
  void add(SampleId id);
  /// Remove the sample at `slot` (swap-with-last; order holders beware).
  void remove_slot(std::size_t slot);
  /// Remove by value; the id must be present. Removes the FIRST occurrence
  /// (ids can transiently duplicate when a self-round stages a copy before
  /// the original is cleaned up), exactly like the linear scan it replaced.
  void remove_id(SampleId id);

  /// Highest occupancy observed since construction / reset_peak().
  [[nodiscard]] std::size_t peak_occupancy() const { return peak_; }
  void reset_peak() { peak_ = ids_.size(); }

  /// True if the store has ever exceeded its capacity (only possible when
  /// capacity enforcement is off).
  [[nodiscard]] bool over_capacity() const {
    return capacity_ != 0 && peak_ > capacity_;
  }

  /// Lifetime stats of the removal-index backend (zeroes before its
  /// first build) — lets benches compare probe lengths across backends.
  [[nodiscard]] io::SlotIndexStats index_stats() const {
    return index_ != nullptr ? index_->stats() : io::SlotIndexStats{};
  }

 private:
  void note_occupancy() {
    if (ids_.size() > peak_) peak_ = ids_.size();
    DSHUF_CHECK(capacity_ == 0 || ids_.size() <= capacity_,
                "shard store exceeded its capacity of "
                    << capacity_ << " (occupancy " << ids_.size() << ")");
  }

  void ensure_index();
  void index_add(SampleId id, std::size_t pos);
  /// Swap-with-last removal of ids_[j] with full index maintenance.
  void remove_at(std::size_t j);

  std::vector<SampleId> ids_;
  std::size_t capacity_ = 0;
  std::size_t peak_ = 0;

  // id -> (first occurrence << 32) | live count, behind the pluggable
  // backend. Null until the first indexed removal needs it.
  std::unique_ptr<io::SlotIndex> index_;
  bool index_dirty_ = true;
};

/// The paper's PLS capacity bound: floor((1 + q) * shard) rounded up by the
/// exchange quota granularity, i.e. shard + quota.
std::size_t pls_capacity(std::size_t shard_size, double q);

}  // namespace dshuf::shuffle
