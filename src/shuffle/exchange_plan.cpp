#include "shuffle/exchange_plan.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dshuf::shuffle {

ExchangePlan::ExchangePlan(std::uint64_t seed, std::size_t epoch, int workers,
                           std::size_t per_worker_quota, bool allow_self) {
  rebuild(seed, epoch, workers, per_worker_quota, allow_self);
}

void ExchangePlan::rebuild(std::uint64_t seed, std::size_t epoch, int workers,
                           std::size_t per_worker_quota, bool allow_self) {
  DSHUF_CHECK_GT(workers, 0, "exchange plan needs at least one worker");
  workers_ = workers;
  Rng base(seed);
  // One independent stream per epoch: every worker derives the identical
  // stream, which is what synchronises the permutations without any
  // communication.
  Rng rng = base.fork(0xE9C4ULL, epoch);

  rounds_.resize(per_worker_quota);
  const auto m = static_cast<std::size_t>(workers);
  for (std::size_t i = 0; i < per_worker_quota; ++i) {
    Round& round = rounds_[i];
    rng.permutation_into(m, perm_);
    if (!allow_self && workers > 1) {
      // Re-draw until the permutation is a derangement. Expected ~e tries.
      auto has_fixed_point = [&](const std::vector<std::uint32_t>& p) {
        for (std::size_t r = 0; r < p.size(); ++r) {
          if (p[r] == r) return true;
        }
        return false;
      };
      while (has_fixed_point(perm_)) rng.permutation_into(m, perm_);
    }
    round.dest.resize(m);
    round.src.resize(m);
    for (std::size_t r = 0; r < m; ++r) {
      round.dest[r] = static_cast<int>(perm_[r]);
      round.src[perm_[r]] = static_cast<int>(r);
    }
  }
}

int ExchangePlan::dest(std::size_t round, int rank) const {
  DSHUF_CHECK_LT(round, rounds_.size(), "round out of range");
  DSHUF_CHECK(rank >= 0 && rank < workers_, "rank out of range");
  return rounds_[round].dest[static_cast<std::size_t>(rank)];
}

int ExchangePlan::source(std::size_t round, int rank) const {
  DSHUF_CHECK_LT(round, rounds_.size(), "round out of range");
  DSHUF_CHECK(rank >= 0 && rank < workers_, "rank out of range");
  return rounds_[round].src[static_cast<std::size_t>(rank)];
}

std::vector<int> ExchangePlan::dests_for(int rank) const {
  std::vector<int> out;
  out.reserve(rounds_.size());
  for (std::size_t i = 0; i < rounds_.size(); ++i) out.push_back(dest(i, rank));
  return out;
}

std::vector<int> ExchangePlan::sources_for(int rank) const {
  std::vector<int> out;
  out.reserve(rounds_.size());
  for (std::size_t i = 0; i < rounds_.size(); ++i) {
    out.push_back(source(i, rank));
  }
  return out;
}

std::size_t ExchangePlan::self_sends() const {
  std::size_t n = 0;
  for (const auto& round : rounds_) {
    for (std::size_t r = 0; r < round.dest.size(); ++r) {
      if (round.dest[r] == static_cast<int>(r)) ++n;
    }
  }
  return n;
}

std::size_t exchange_quota(std::size_t shard_size, double q) {
  DSHUF_CHECK(q >= 0.0 && q <= 1.0, "exchange fraction Q must be in [0, 1]");
  const auto k = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(shard_size)));
  return std::min(k, shard_size);
}

std::vector<std::size_t> naive_exchange_recv_counts(std::uint64_t seed,
                                                    std::size_t epoch,
                                                    int workers,
                                                    std::size_t quota) {
  DSHUF_CHECK_GT(workers, 0, "need at least one worker");
  Rng base(seed);
  std::vector<std::size_t> recv(static_cast<std::size_t>(workers), 0);
  for (int r = 0; r < workers; ++r) {
    // Independent stream per sender — no coordination, hence no balance.
    Rng rng = base.fork(0xBAD, epoch, static_cast<std::uint64_t>(r));
    for (std::size_t i = 0; i < quota; ++i) {
      const auto dest =
          rng.uniform_u64(static_cast<std::uint64_t>(workers));
      ++recv[dest];
    }
  }
  return recv;
}

}  // namespace dshuf::shuffle
