#include "shuffle/exchange_plan.hpp"

#include <atomic>
#include <cmath>
#include <mutex>

#include "util/error.hpp"
#include "util/ranked_mutex.hpp"

namespace dshuf::shuffle {

ExchangePlan::ExchangePlan(std::uint64_t seed, std::size_t epoch, int workers,
                           std::size_t per_worker_quota, bool allow_self) {
  rebuild(seed, epoch, workers, per_worker_quota, allow_self);
}

void ExchangePlan::rebuild(std::uint64_t seed, std::size_t epoch, int workers,
                           std::size_t per_worker_quota, bool allow_self) {
  DSHUF_CHECK_GT(workers, 0, "exchange plan needs at least one worker");
  workers_ = workers;
  Rng base(seed);
  // One independent stream per epoch: every worker derives the identical
  // stream, which is what synchronises the permutations without any
  // communication.
  Rng rng = base.fork(0xE9C4ULL, epoch);

  rounds_.resize(per_worker_quota);
  const auto m = static_cast<std::size_t>(workers);
  for (std::size_t i = 0; i < per_worker_quota; ++i) {
    Round& round = rounds_[i];
    rng.permutation_into(m, perm_);
    if (!allow_self && workers > 1) {
      // Re-draw until the permutation is a derangement. Expected ~e tries.
      auto has_fixed_point = [&](const std::vector<std::uint32_t>& p) {
        for (std::size_t r = 0; r < p.size(); ++r) {
          if (p[r] == r) return true;
        }
        return false;
      };
      while (has_fixed_point(perm_)) rng.permutation_into(m, perm_);
    }
    round.dest.resize(m);
    round.src.resize(m);
    for (std::size_t r = 0; r < m; ++r) {
      round.dest[r] = static_cast<int>(perm_[r]);
      round.src[perm_[r]] = static_cast<int>(r);
    }
  }
}

void ExchangePlan::rebuild_grouped(std::uint64_t seed, std::size_t epoch,
                                   int groups, int group_size,
                                   std::size_t per_worker_quota,
                                   double intra_fraction) {
  DSHUF_CHECK_GT(groups, 0, "need at least one group");
  DSHUF_CHECK_GT(group_size, 0, "need at least one rank per group");
  DSHUF_CHECK(intra_fraction >= 0.0 && intra_fraction <= 1.0,
              "intra fraction must be in [0, 1]");
  workers_ = groups * group_size;
  Rng base(seed);
  // Same stream tag and draw order as HierarchicalExchangePlan: per round,
  // one group permutation (inter rounds only — intra rounds build the
  // identity without consuming draws), then one local permutation per
  // source group.
  Rng stream = base.fork(0x41E2, epoch);

  const auto m = static_cast<std::size_t>(workers_);
  const auto intra_rounds = static_cast<std::size_t>(
      std::round(intra_fraction * static_cast<double>(per_worker_quota)));

  rounds_.resize(per_worker_quota);
  for (std::size_t i = 0; i < per_worker_quota; ++i) {
    const bool inter = i >= intra_rounds && groups > 1;
    if (inter) {
      stream.permutation_into(static_cast<std::size_t>(groups), gperm_);
    } else {
      gperm_.resize(static_cast<std::size_t>(groups));
      for (std::size_t g = 0; g < gperm_.size(); ++g) {
        gperm_[g] = static_cast<std::uint32_t>(g);
      }
    }
    Round& round = rounds_[i];
    round.dest.resize(m);
    round.src.resize(m);
    for (int g = 0; g < groups; ++g) {
      stream.permutation_into(static_cast<std::size_t>(group_size), perm_);
      for (int s = 0; s < group_size; ++s) {
        const int from = g * group_size + s;
        const int to =
            static_cast<int>(gperm_[static_cast<std::size_t>(g)]) *
                group_size +
            static_cast<int>(perm_[static_cast<std::size_t>(s)]);
        round.dest[static_cast<std::size_t>(from)] = to;
        round.src[static_cast<std::size_t>(to)] = from;
      }
    }
  }
}

int ExchangePlan::dest(std::size_t round, int rank) const {
  DSHUF_CHECK_LT(round, rounds_.size(), "round out of range");
  DSHUF_CHECK(rank >= 0 && rank < workers_, "rank out of range");
  return rounds_[round].dest[static_cast<std::size_t>(rank)];
}

int ExchangePlan::source(std::size_t round, int rank) const {
  DSHUF_CHECK_LT(round, rounds_.size(), "round out of range");
  DSHUF_CHECK(rank >= 0 && rank < workers_, "rank out of range");
  return rounds_[round].src[static_cast<std::size_t>(rank)];
}

std::vector<int> ExchangePlan::dests_for(int rank) const {
  std::vector<int> out;
  out.reserve(rounds_.size());
  for (std::size_t i = 0; i < rounds_.size(); ++i) out.push_back(dest(i, rank));
  return out;
}

std::vector<int> ExchangePlan::sources_for(int rank) const {
  std::vector<int> out;
  out.reserve(rounds_.size());
  for (std::size_t i = 0; i < rounds_.size(); ++i) {
    out.push_back(source(i, rank));
  }
  return out;
}

std::size_t ExchangePlan::self_sends() const {
  std::size_t n = 0;
  for (const auto& round : rounds_) {
    for (std::size_t r = 0; r < round.dest.size(); ++r) {
      if (round.dest[r] == static_cast<int>(r)) ++n;
    }
  }
  return n;
}

namespace {

std::atomic<bool> g_plan_interning{false};

// Tiny lookaside: ranks straddle at most a few epoch boundaries, so a
// handful of slots catches every hit. Evicted entries stay alive through
// the shared_ptrs held in rank scratches.
constexpr std::size_t kPlanCacheSlots = 4;

struct PlanCacheEntry {
  PlanSpec spec;
  std::shared_ptr<const ExchangePlan> plan;
  std::uint64_t stamp = 0;
};

RankedMutex g_plan_cache_mu{LockRank::kPlanCache, "shuffle.plan_cache"};
std::vector<PlanCacheEntry> g_plan_cache;  // guarded by g_plan_cache_mu

}  // namespace

bool plan_interning_enabled() {
  return g_plan_interning.load(std::memory_order_acquire);
}

void set_plan_interning(bool on) {
  g_plan_interning.store(on, std::memory_order_release);
}

std::shared_ptr<const ExchangePlan> intern_exchange_plan(
    const PlanSpec& spec) {
  // Build under the lock: every rank asking for the same epoch either
  // builds it (first arrival) or waits for that one build — never builds
  // its own copy. The build is O(quota * M), once per epoch per process.
  std::lock_guard<RankedMutex> lk(g_plan_cache_mu);
  auto& cache = g_plan_cache;
  static std::uint64_t stamp = 0;
  ++stamp;
  for (auto& e : cache) {
    if (e.spec == spec) {
      e.stamp = stamp;
      return e.plan;
    }
  }
  auto plan = std::make_shared<ExchangePlan>();
  if (spec.groups > 1 && spec.group_size > 0) {
    plan->rebuild_grouped(spec.seed, spec.epoch, spec.groups,
                          spec.group_size, spec.quota, spec.intra_fraction);
  } else {
    plan->rebuild(spec.seed, spec.epoch, spec.workers, spec.quota);
  }
  if (cache.size() >= kPlanCacheSlots) {
    std::size_t oldest = 0;
    for (std::size_t i = 1; i < cache.size(); ++i) {
      if (cache[i].stamp < cache[oldest].stamp) oldest = i;
    }
    cache.erase(cache.begin() + static_cast<std::ptrdiff_t>(oldest));
  }
  cache.push_back(PlanCacheEntry{spec, plan, stamp});
  return plan;
}

std::size_t exchange_quota(std::size_t shard_size, double q) {
  DSHUF_CHECK(q >= 0.0 && q <= 1.0, "exchange fraction Q must be in [0, 1]");
  const auto k = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(shard_size)));
  return std::min(k, shard_size);
}

std::vector<std::size_t> naive_exchange_recv_counts(std::uint64_t seed,
                                                    std::size_t epoch,
                                                    int workers,
                                                    std::size_t quota) {
  DSHUF_CHECK_GT(workers, 0, "need at least one worker");
  Rng base(seed);
  std::vector<std::size_t> recv(static_cast<std::size_t>(workers), 0);
  for (int r = 0; r < workers; ++r) {
    // Independent stream per sender — no coordination, hence no balance.
    Rng rng = base.fork(0xBAD, epoch, static_cast<std::uint64_t>(r));
    for (std::size_t i = 0; i < quota; ++i) {
      const auto dest =
          rng.uniform_u64(static_cast<std::uint64_t>(workers));
      ++recv[dest];
    }
  }
  return recv;
}

}  // namespace dshuf::shuffle
