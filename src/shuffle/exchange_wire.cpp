#include "shuffle/exchange_wire.hpp"

#include <atomic>
#include <cstring>

namespace dshuf::shuffle {

namespace {

// Acquire/release atomic (see the thread-model note in exchange_wire.hpp):
// the flip publishes with release and every epoch reads it exactly once
// at dispatch with acquire, so one exchange epoch never straddles a flip.
std::atomic<ExchangeWire> g_wire{ExchangeWire::kCoalesced};

void put_u32(std::vector<std::byte>& buf, std::size_t at, std::uint32_t v) {
  std::memcpy(buf.data() + at, &v, sizeof(v));
}

void append_u32(std::vector<std::byte>& buf, std::uint32_t v) {
  const std::size_t at = buf.size();
  // Frame buffers are reserved to frame_capacity_bound ahead of packing,
  // so steady-state growth here stays within capacity.
  // analyze:alloc-ok buffer reserved to frame_capacity_bound ahead of time
  buf.resize(at + sizeof(v));
  std::memcpy(buf.data() + at, &v, sizeof(v));
}

std::uint32_t read_u32(const std::byte* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

ExchangeWire exchange_wire() {
  return g_wire.load(std::memory_order_acquire);
}

void set_exchange_wire(ExchangeWire wire) {
  g_wire.store(wire, std::memory_order_release);
}

const char* to_string(ExchangeWire wire) {
  return wire == ExchangeWire::kPerSample ? "per-sample" : "coalesced";
}

FrameWriter::FrameWriter(std::vector<std::byte>& buf, std::uint64_t epoch,
                         int origin, std::uint64_t flow_id,
                         std::uint32_t count)
    : buf_(&buf), count_(count) {
  // analyze:alloc-ok frame buffers are reserved to frame_capacity_bound
  buf.resize(frame_header_bytes(count));
  std::memcpy(buf.data() + kFrameEpochOff, &epoch, sizeof(epoch));
  put_u32(buf, kFrameOriginOff, static_cast<std::uint32_t>(origin));
  std::memcpy(buf.data() + kFrameFlowIdOff, &flow_id, sizeof(flow_id));
  put_u32(buf, kFrameCountOff, count);
  // The offset table is patched in finish(); zero it now so a frame that
  // skips finish() is caught by parse_frame's monotonicity check.
  std::memset(buf.data() + kFrameOffsetsOff, 0,
              sizeof(std::uint32_t) * (count + 1));
}

void FrameWriter::begin_sample(SampleId id) {
  DSHUF_CHECK_LT(next_, count_, "FrameWriter: more samples than declared");
  const auto body_off =
      static_cast<std::uint32_t>(buf_->size() - frame_header_bytes(count_));
  put_u32(*buf_, kFrameOffsetsOff + sizeof(std::uint32_t) * next_, body_off);
  append_u32(*buf_, id);
  ++next_;
}

void FrameWriter::finish() {
  DSHUF_CHECK_EQ(next_, count_, "FrameWriter: fewer samples than declared");
  const auto body_size =
      static_cast<std::uint32_t>(buf_->size() - frame_header_bytes(count_));
  put_u32(*buf_, kFrameOffsetsOff + sizeof(std::uint32_t) * count_, body_size);
}

std::uint32_t FrameView::offset(std::uint32_t j) const {
  return read_u32(offsets_ + sizeof(std::uint32_t) * j);
}

SampleId FrameView::id(std::uint32_t j) const {
  DSHUF_CHECK_LT(j, count_, "frame sample index out of range");
  return read_u32(body_ + offset(j));
}

std::span<const std::byte> FrameView::payload(std::uint32_t j) const {
  DSHUF_CHECK_LT(j, count_, "frame sample index out of range");
  const std::uint32_t lo = offset(j);
  const std::uint32_t hi = offset(j + 1);
  return {body_ + lo + sizeof(SampleId), hi - lo - sizeof(SampleId)};
}

FrameView parse_frame(std::span<const std::byte> frame) {
  DSHUF_CHECK_GE(frame.size(), frame_header_bytes(0),
                 "truncated exchange frame: short header");
  FrameView v;
  std::memcpy(&v.epoch_, frame.data() + kFrameEpochOff, sizeof(v.epoch_));
  v.origin_ = read_u32(frame.data() + kFrameOriginOff);
  std::memcpy(&v.flow_id_, frame.data() + kFrameFlowIdOff,
              sizeof(v.flow_id_));
  v.count_ = read_u32(frame.data() + kFrameCountOff);
  const std::size_t header = frame_header_bytes(v.count_);
  DSHUF_CHECK_GE(frame.size(), header,
                 "truncated exchange frame: offset table cut off");
  v.offsets_ = frame.data() + kFrameOffsetsOff;
  v.body_ = frame.data() + header;
  v.body_size_ = frame.size() - header;
  DSHUF_CHECK_EQ(static_cast<std::size_t>(v.offset(0)), 0U,
                 "corrupt exchange frame: first offset not zero");
  DSHUF_CHECK_EQ(static_cast<std::size_t>(v.offset(v.count_)), v.body_size_,
                 "truncated exchange frame: body size mismatch");
  for (std::uint32_t j = 0; j < v.count_; ++j) {
    DSHUF_CHECK(v.offset(j) + sizeof(SampleId) <= v.offset(j + 1) &&
                    v.offset(j + 1) <= v.body_size_,
                "corrupt exchange frame: sample " << j << " offsets ["
                    << v.offset(j) << ", " << v.offset(j + 1)
                    << ") invalid for body of " << v.body_size_ << " bytes");
  }
  return v;
}

}  // namespace dshuf::shuffle
