#include "shuffle/hierarchical.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dshuf::shuffle {

HierarchicalExchangePlan::HierarchicalExchangePlan(
    std::uint64_t seed, std::size_t epoch, int groups, int group_size,
    std::size_t per_worker_quota, double intra_fraction)
    : groups_(groups), group_size_(group_size) {
  DSHUF_CHECK_GT(groups, 0, "need at least one group");
  DSHUF_CHECK_GT(group_size, 0, "need at least one rank per group");
  DSHUF_CHECK(intra_fraction >= 0.0 && intra_fraction <= 1.0,
              "intra fraction must be in [0, 1]");
  Rng base(seed);
  Rng stream = base.fork(0x41E2, epoch);

  const auto m = static_cast<std::size_t>(groups * group_size);
  const auto intra_rounds = static_cast<std::size_t>(
      std::round(intra_fraction * static_cast<double>(per_worker_quota)));

  dest_.reserve(per_worker_quota);
  src_.reserve(per_worker_quota);
  inter_.reserve(per_worker_quota);
  for (std::size_t i = 0; i < per_worker_quota; ++i) {
    const bool inter = i >= intra_rounds && groups > 1;
    // Group-level permutation: identity for intra rounds.
    std::vector<std::uint32_t> gperm;
    if (inter) {
      gperm = stream.permutation(static_cast<std::size_t>(groups));
    } else {
      gperm.resize(static_cast<std::size_t>(groups));
      for (std::size_t g = 0; g < gperm.size(); ++g) {
        gperm[g] = static_cast<std::uint32_t>(g);
      }
    }
    // Per-source-group local-slot permutation.
    std::vector<int> dest(m);
    std::vector<int> src(m);
    for (int g = 0; g < groups; ++g) {
      const auto lperm =
          stream.permutation(static_cast<std::size_t>(group_size));
      for (int s = 0; s < group_size; ++s) {
        const int from = g * group_size + s;
        const int to = static_cast<int>(gperm[g]) * group_size +
                       static_cast<int>(lperm[s]);
        dest[from] = to;
        src[to] = from;
      }
    }
    dest_.push_back(std::move(dest));
    src_.push_back(std::move(src));
    inter_.push_back(inter);
  }
}

int HierarchicalExchangePlan::dest(std::size_t round, int rank) const {
  DSHUF_CHECK_LT(round, dest_.size(), "round out of range");
  DSHUF_CHECK(rank >= 0 && rank < workers(), "rank out of range");
  return dest_[round][static_cast<std::size_t>(rank)];
}

int HierarchicalExchangePlan::source(std::size_t round, int rank) const {
  DSHUF_CHECK_LT(round, src_.size(), "round out of range");
  DSHUF_CHECK(rank >= 0 && rank < workers(), "rank out of range");
  return src_[round][static_cast<std::size_t>(rank)];
}

bool HierarchicalExchangePlan::round_is_inter_group(std::size_t round) const {
  DSHUF_CHECK_LT(round, inter_.size(), "round out of range");
  return inter_[round];
}

HierarchicalPartialShuffler::HierarchicalPartialShuffler(
    std::vector<std::vector<SampleId>> shards, double q, int groups,
    std::uint64_t seed, double intra_fraction)
    : q_(q),
      groups_(groups),
      intra_fraction_(intra_fraction),
      seed_(seed),
      orders_(shards.size()) {
  DSHUF_CHECK(!shards.empty(), "need at least one shard");
  DSHUF_CHECK(q >= 0.0 && q <= 1.0, "Q must be in [0, 1]");
  DSHUF_CHECK_GT(groups, 0, "need at least one group");
  DSHUF_CHECK_EQ(shards.size() % static_cast<std::size_t>(groups), 0U,
                 "workers must divide evenly into groups");
  std::size_t min_shard = shards[0].size();
  for (const auto& s : shards) min_shard = std::min(min_shard, s.size());
  const std::size_t quota = exchange_quota(min_shard, q);
  stores_.reserve(shards.size());
  for (auto& s : shards) {
    const std::size_t cap = s.size() + quota;
    stores_.emplace_back(std::move(s), cap);
  }
}

std::string HierarchicalPartialShuffler::label() const {
  return strategy_label(Strategy::kPartial, q_) + "-hier" +
         std::to_string(groups_);
}

void HierarchicalPartialShuffler::begin_epoch(std::size_t epoch) {
  const auto m = stores_.size();
  std::size_t min_shard = stores_[0].size();
  for (const auto& s : stores_) min_shard = std::min(min_shard, s.size());
  const std::size_t quota = exchange_quota(min_shard, q_);

  stats_ = ExchangeStats{};
  stats_.epoch = epoch;
  stats_.sent_per_worker.assign(m, 0);
  stats_.received_per_worker.assign(m, 0);
  stats_.local_reads_per_worker.assign(m, 0);
  stats_.peak_occupancy_per_worker.assign(m, 0);

  if (quota > 0 && m > 1) {
    const HierarchicalExchangePlan plan(
        seed_, epoch, groups_, static_cast<int>(m) / groups_, quota,
        intra_fraction_);
    last_intra_fraction_ = plan.intra_group_traffic_fraction();
    std::vector<std::vector<SampleId>> outgoing(m);
    for (std::size_t w = 0; w < m; ++w) {
      stores_[w].reset_peak();
      const auto picks =
          pick_permutation(seed_, epoch, static_cast<int>(w),
                           stores_[w].size());
      outgoing[w].reserve(quota);
      for (std::size_t i = 0; i < quota; ++i) {
        outgoing[w].push_back(stores_[w].ids()[picks[i]]);
      }
    }
    for (std::size_t i = 0; i < quota; ++i) {
      for (std::size_t w = 0; w < m; ++w) {
        const int d = plan.dest(i, static_cast<int>(w));
        stores_[static_cast<std::size_t>(d)].add(outgoing[w][i]);
        ++stats_.received_per_worker[static_cast<std::size_t>(d)];
        ++stats_.sent_per_worker[w];
      }
    }
    for (std::size_t w = 0; w < m; ++w) {
      for (SampleId id : outgoing[w]) stores_[w].remove_id(id);
    }
  } else {
    for (auto& s : stores_) s.reset_peak();
  }

  for (std::size_t w = 0; w < m; ++w) {
    post_exchange_local_shuffle(seed_, epoch, static_cast<int>(w),
                                stores_[w].mutable_ids());
    orders_[w] = stores_[w].ids();
    stats_.local_reads_per_worker[w] =
        orders_[w].size() - stats_.received_per_worker[w];
    stats_.peak_occupancy_per_worker[w] = stores_[w].peak_occupancy();
  }
}

const std::vector<SampleId>& HierarchicalPartialShuffler::local_order(
    int worker) const {
  DSHUF_CHECK(worker >= 0 && worker < workers(), "worker out of range");
  return orders_[static_cast<std::size_t>(worker)];
}

double HierarchicalExchangePlan::intra_group_traffic_fraction() const {
  if (dest_.empty()) return 1.0;
  std::size_t intra = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < dest_.size(); ++i) {
    for (int r = 0; r < workers(); ++r) {
      ++total;
      if (group_of(r) == group_of(dest_[i][static_cast<std::size_t>(r)])) {
        ++intra;
      }
    }
  }
  return static_cast<double>(intra) / static_cast<double>(total);
}

}  // namespace dshuf::shuffle
