// Mixing analytics: WHY does a small exchange fraction suffice?
//
// The paper observes empirically that Q = 0.1-0.3 restores global-level
// accuracy but offers no quantitative account. These tools measure the
// mixing the exchange induces:
//
//   * skew decay — the total-variation distance between each worker's
//     label distribution and the global one, tracked over epochs. Under
//     the balanced exchange a fraction Q of each shard is resampled from
//     the global pool every epoch, so the expected skew contracts by
//     ~(1 - Q) per epoch: skew(e) ~ skew(0) * (1 - Q)^e. After the LR
//     warmup (a handful of epochs), even Q = 0.1 has collapsed the
//     initial-partition pathology — which is exactly when accuracy
//     recovers in Fig. 5/6.
//
//   * coverage — the expected number of distinct samples a worker has
//     hosted after e epochs (how quickly a worker's effective training
//     set approaches the paper's global-shuffling ideal).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "shuffle/shuffler.hpp"

namespace dshuf::shuffle {

struct MixingTrace {
  /// Mean worker-vs-global label-distribution TV distance per epoch
  /// (epoch 0 = after the first begin_epoch).
  std::vector<double> skew_per_epoch;
  /// Mean over workers of |distinct samples hosted so far| / shard size.
  std::vector<double> coverage_per_epoch;
  /// Least-squares per-epoch contraction factor of the skew sequence
  /// (skew(e+1) / skew(e) geometric mean); ~(1 - Q) for the balanced
  /// exchange, 1.0 for pure local shuffling.
  double skew_contraction = 1.0;
};

/// Run `epochs` epochs of `shuffler` against `dataset` and record the
/// mixing trace. The shuffler is advanced (stateful).
MixingTrace measure_mixing(Shuffler& shuffler,
                           const data::InMemoryDataset& dataset,
                           std::size_t epochs);

/// Closed-form expectation for the balanced exchange: skew0 * (1 - q)^e.
double expected_skew(double skew0, double q, std::size_t epoch);

}  // namespace dshuf::shuffle
