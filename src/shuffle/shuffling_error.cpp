#include "shuffle/shuffling_error.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace dshuf::shuffle {

double log_sigma(double n, double m, double q) {
  DSHUF_CHECK_GT(n, 0.0, "dataset size must be positive");
  DSHUF_CHECK_GE(m, 1.0, "worker count must be >= 1");
  DSHUF_CHECK(q >= 0.0 && q <= 1.0, "Q must be in [0, 1]");
  const double per = n / m;             // |N| / |M|
  const double rest = (m - 1.0) * per;  // samples held by other partitions
  const double ex = q * per;            // exchanged per partition

  // Equation 9's four factors, in log space:
  //   (N/M)!                                  — permutations of a partition
  //   P(rest, ex)  = rest! / (rest - ex)!     — candidate incoming samples
  //   P(per, ex)   = per!  / (per  - ex)!     — outgoing pick arrangements
  //   rest!                                   — remaining samples elsewhere
  const double t1 = log_factorial(per);
  const double t2 = log_falling_factorial(rest, std::min(ex, rest));
  const double t3 = log_falling_factorial(per, ex);
  const double t4 = log_factorial(rest);
  return t1 + t2 + t3 + t4;
}

double log_total_permutations(double n) { return log_factorial(n); }

double shuffling_error(double n, double m, double q) {
  const double ratio = exp_log_ratio(log_sigma(n, m, q),
                                     log_total_permutations(n));
  return std::clamp(1.0 - ratio, 0.0, 1.0);
}

bool sigma_overcounts(double n, double m, double q) {
  return log_sigma(n, m, q) > log_total_permutations(n);
}

double domination_threshold(double n, double m, double b) {
  DSHUF_CHECK_GT(n, 0.0, "dataset size must be positive");
  return std::sqrt(b * m / n);
}

bool error_dominates(const ErrorParams& p) {
  return shuffling_error(p.n, p.m, p.q) > domination_threshold(p.n, p.m, p.b);
}

BoundTerms bound_terms(const ErrorParams& p, double epochs) {
  DSHUF_CHECK_GT(epochs, 0.0, "epoch count must be positive");
  BoundTerms t;
  t.statistical = std::sqrt(1.0 / (epochs * p.n));
  t.optimization = std::log(p.n) / p.n;
  const double eps = shuffling_error(p.n, p.m, p.q);
  t.shuffling = p.n * eps * eps / (p.b * p.m);
  return t;
}

}  // namespace dshuf::shuffle
