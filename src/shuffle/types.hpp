// Common types for the shuffling core.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace dshuf::shuffle {

using data::SampleId;

/// The strategies of Section III-A (global / local / partial), plus the
/// DeepIO-style uncontrolled baseline of Section VI-A. Partial with Q = 1
/// degenerates to global; Q = 0 to local.
enum class Strategy { kGlobal, kLocal, kPartial, kUncontrolled };

std::string to_string(Strategy s);
Strategy parse_strategy(const std::string& s);

/// Human-readable label, e.g. "global", "local", "partial-0.3".
std::string strategy_label(Strategy s, double q);

/// Volume bookkeeping for one epoch's exchange.
struct ExchangeStats {
  std::size_t epoch = 0;
  /// Samples each worker sent (== received; the scheme is balanced).
  std::vector<std::size_t> sent_per_worker;
  std::vector<std::size_t> received_per_worker;
  /// Samples kept local per worker (read from local storage).
  std::vector<std::size_t> local_reads_per_worker;
  /// Peak shard occupancy per worker during the exchange window (for the
  /// (1+Q) * N/M storage-bound check).
  std::vector<std::size_t> peak_occupancy_per_worker;

  // Robustness bookkeeping, filled by the message-passing executor when it
  // runs with retry/timeout enabled (see shuffle/mpi_exchange.hpp). The
  // fault-free sequential drivers leave these at zero.
  /// Extra DATA transmissions beyond each round's first attempt.
  std::size_t retries = 0;
  /// Rounds whose sample stayed at the sender (receiver never got it).
  std::size_t send_fallbacks = 0;
  /// Rounds whose expected sample never arrived within the deadline.
  std::size_t recv_fallbacks = 0;
  /// Redundant copies of already-received samples discarded at epoch end.
  std::size_t duplicates_suppressed = 0;

  [[nodiscard]] std::size_t total_sent() const {
    std::size_t t = 0;
    for (auto s : sent_per_worker) t += s;
    return t;
  }
};

}  // namespace dshuf::shuffle
