// Hierarchical global exchange — the alternative the paper proposes for
// the >=1,024-worker congestion regime (Section V-F): "use a hierarchical
// global exchange scheme that maps to the hierarchy of connection between
// computing nodes".
//
// Workers are organised into G groups of S ranks (a group = a node or a
// rack). Each exchange round is still a permutation of ALL ranks — so the
// Algorithm-1 balance guarantee is preserved exactly — but the permutation
// is constrained to the product of
//   * a permutation of the groups (inter-group traffic), and
//   * per-group permutations of the local slots (intra-group traffic),
// and a configurable fraction of rounds uses the identity group
// permutation (purely intra-group rounds, which cost near-nothing on a
// real network). The inter-group pattern degenerates to G-way traffic
// instead of M-way, which is what cuts the all-to-all congestion at
// scale; the perf model exposes the same knob.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace dshuf::shuffle {

class HierarchicalExchangePlan {
 public:
  /// `workers` must equal `groups * group_size`. `intra_fraction` of the
  /// rounds are intra-group only (identity group permutation).
  HierarchicalExchangePlan(std::uint64_t seed, std::size_t epoch, int groups,
                           int group_size, std::size_t per_worker_quota,
                           double intra_fraction = 0.5);

  [[nodiscard]] int workers() const { return groups_ * group_size_; }
  [[nodiscard]] int groups() const { return groups_; }
  [[nodiscard]] int group_size() const { return group_size_; }
  [[nodiscard]] std::size_t rounds() const { return dest_.size(); }

  /// Destination of worker `rank`'s round-i sample.
  [[nodiscard]] int dest(std::size_t round, int rank) const;
  /// Source whose round-i sample arrives at `rank`.
  [[nodiscard]] int source(std::size_t round, int rank) const;

  /// True if round i crosses group boundaries for at least one rank.
  [[nodiscard]] bool round_is_inter_group(std::size_t round) const;

  /// Fraction of all (round, rank) sends that stay within the sender's
  /// group — the traffic-locality metric the scheme optimises.
  [[nodiscard]] double intra_group_traffic_fraction() const;

  /// Group of a rank (ranks are grouped contiguously: rank / group_size).
  [[nodiscard]] int group_of(int rank) const { return rank / group_size_; }

 private:
  int groups_;
  int group_size_;
  std::vector<std::vector<int>> dest_;  // [round][rank]
  std::vector<std::vector<int>> src_;   // inverse permutations
  std::vector<bool> inter_;             // per-round inter-group flag
};

}  // namespace dshuf::shuffle

#include "shuffle/shuffler.hpp"

namespace dshuf::shuffle {

/// Partial local shuffling driven by the hierarchical plan. Identical
/// epoch protocol to PartialLocalShuffler (same picks, same staging, same
/// (1+Q) capacity window, same post-exchange local shuffle) — only the
/// destination pattern differs, so accuracy-relevant behaviour is
/// preserved while the traffic becomes group-local. The test suite
/// asserts balance/conservation and the benches compare accuracy and
/// modelled exchange time against the flat scheme.
class HierarchicalPartialShuffler final : public Shuffler {
 public:
  HierarchicalPartialShuffler(std::vector<std::vector<SampleId>> shards,
                              double q, int groups, std::uint64_t seed,
                              double intra_fraction = 0.5);

  void begin_epoch(std::size_t epoch) override;
  [[nodiscard]] const std::vector<SampleId>& local_order(
      int worker) const override;
  [[nodiscard]] int workers() const override {
    return static_cast<int>(stores_.size());
  }
  [[nodiscard]] std::string label() const override;
  [[nodiscard]] const ExchangeStats* last_stats() const override {
    return &stats_;
  }

  [[nodiscard]] const std::vector<ShardStore>& stores() const {
    return stores_;
  }
  /// Locality achieved by the last epoch's plan (1.0 until the first
  /// exchange happens).
  [[nodiscard]] double last_intra_fraction() const {
    return last_intra_fraction_;
  }

 private:
  double q_;
  int groups_;
  double intra_fraction_;
  std::uint64_t seed_;
  std::vector<ShardStore> stores_;
  std::vector<std::vector<SampleId>> orders_;
  ExchangeStats stats_;
  double last_intra_fraction_ = 1.0;
};

}  // namespace dshuf::shuffle
