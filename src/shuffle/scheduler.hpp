// Epoch exchange scheduler — the C++ analogue of the paper's PLS.Scheduler
// (Figure 3) with the iteration-overlapped communication of Figure 4.
//
// Usage per epoch, mirroring the paper's training-script integration:
//
//   scheduler.scheduling(epoch);          // plan the exchange
//   for (it = 0; it < iterations; ++it) {
//     auto chunk = scheduler.communicate(it);  // non-blocking: Q*b samples
//     ... forward/backward of iteration it ...
//     scheduler.synchronize(chunk);       // wait for the chunk
//   }
//   scheduler.clean_local_storage();      // drop transmitted samples,
//                                         // local-shuffle for next epoch
//
// The scheduler operates on ALL workers' stores at once (the sequential
// driver equivalent of every rank running its own scheduler); it produces
// bit-identical shard contents to PartialLocalShuffler::begin_epoch for the
// same (seed, epoch, Q) — a property the test suite asserts — while
// exposing the chunked timeline the performance model consumes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "shuffle/exchange_plan.hpp"
#include "shuffle/shard_store.hpp"
#include "shuffle/types.hpp"

namespace dshuf::shuffle {

class Scheduler {
 public:
  /// `local_batch` is b; each iteration exchanges ceil(Q*b) samples so the
  /// whole quota completes within the epoch's I = shard/b iterations.
  Scheduler(std::vector<std::vector<SampleId>> shards, double q,
            std::size_t local_batch, std::uint64_t seed);

  [[nodiscard]] int workers() const {
    return static_cast<int>(stores_.size());
  }
  [[nodiscard]] double q() const { return q_; }
  [[nodiscard]] std::size_t iterations_per_epoch() const;

  /// Phase 1: compute the exchange plan and outgoing picks for `epoch`.
  void scheduling(std::size_t epoch);

  /// Phase 2 (per iteration): deliver the next chunk of exchange rounds
  /// (non-blocking in a real deployment; here the delivery is recorded and
  /// the chunk describes the in-flight volume for the perf model).
  struct IterationChunk {
    std::size_t first_round = 0;
    std::size_t num_rounds = 0;
    /// Samples (== num_rounds) each worker sends and receives during this
    /// iteration's overlap window.
    [[nodiscard]] std::size_t samples_per_worker() const {
      return num_rounds;
    }
  };
  IterationChunk communicate(std::size_t iteration);

  /// Phase 3: wait for the chunk's transfers (no-op for the sequential
  /// driver; kept for interface fidelity and for the perf model's timeline).
  void synchronize(const IterationChunk& chunk);

  /// Phase 4 (end of epoch): remove transmitted samples and local-shuffle
  /// the updated shards. Any rounds not yet delivered via communicate()
  /// are flushed first (the paper waits for outstanding requests at epoch
  /// end — Algorithm 1 line 7).
  void clean_local_storage();

  /// Visit order for `worker` in the CURRENT epoch (valid after
  /// scheduling(); reflects the pre-exchange shard, since exchanged samples
  /// are only trained on from the NEXT epoch, per Fig. 4).
  [[nodiscard]] const std::vector<SampleId>& local_order(int worker) const;

  [[nodiscard]] const std::vector<ShardStore>& stores() const {
    return stores_;
  }
  [[nodiscard]] const ExchangeStats& last_stats() const { return stats_; }

 private:
  double q_;
  std::size_t local_batch_;
  std::uint64_t seed_;
  Rng base_rng_;
  std::vector<ShardStore> stores_;
  std::vector<std::vector<SampleId>> orders_;

  // Epoch-scoped state.
  std::size_t epoch_ = 0;
  bool epoch_open_ = false;
  std::size_t quota_ = 0;
  std::size_t delivered_rounds_ = 0;
  std::unique_ptr<ExchangePlan> plan_;
  std::vector<std::vector<SampleId>> outgoing_;
  ExchangeStats stats_;

  void deliver_rounds(std::size_t upto);
};

}  // namespace dshuf::shuffle
