#include "shuffle/mixing.hpp"

#include <cmath>
#include <set>

#include "util/error.hpp"

namespace dshuf::shuffle {

namespace {

double shard_skew(const data::InMemoryDataset& dataset,
                  const std::vector<SampleId>& shard,
                  const std::vector<double>& global_p) {
  if (shard.empty()) return 0.0;
  std::vector<double> p(global_p.size(), 0.0);
  for (auto id : shard) p[dataset.label(id)] += 1.0;
  double tv = 0.0;
  for (std::size_t c = 0; c < p.size(); ++c) {
    tv += std::abs(p[c] / static_cast<double>(shard.size()) - global_p[c]);
  }
  return 0.5 * tv;
}

}  // namespace

MixingTrace measure_mixing(Shuffler& shuffler,
                           const data::InMemoryDataset& dataset,
                           std::size_t epochs) {
  DSHUF_CHECK_GT(epochs, 0U, "need at least one epoch");
  const auto m = static_cast<std::size_t>(shuffler.workers());

  std::vector<double> global_p(dataset.num_classes(), 0.0);
  for (auto l : dataset.labels()) global_p[l] += 1.0;
  for (auto& p : global_p) p /= static_cast<double>(dataset.size());

  std::vector<std::set<SampleId>> hosted(m);
  MixingTrace trace;
  for (std::size_t e = 0; e < epochs; ++e) {
    shuffler.begin_epoch(e);
    double skew = 0.0;
    double coverage = 0.0;
    for (std::size_t w = 0; w < m; ++w) {
      const auto& order = shuffler.local_order(static_cast<int>(w));
      skew += shard_skew(dataset, order, global_p);
      hosted[w].insert(order.begin(), order.end());
      coverage += order.empty()
                      ? 0.0
                      : static_cast<double>(hosted[w].size()) /
                            static_cast<double>(order.size());
    }
    trace.skew_per_epoch.push_back(skew / static_cast<double>(m));
    trace.coverage_per_epoch.push_back(coverage / static_cast<double>(m));
  }

  // Geometric-mean contraction of the EXCESS skew above the finite-sample
  // floor: a shard of n samples over C classes has nonzero empirical TV
  // distance even when perfectly mixed, so the decaying quantity is
  // skew(e) - floor, with the floor estimated from the trace minimum.
  double floor = trace.skew_per_epoch.front();
  for (double s : trace.skew_per_epoch) floor = std::min(floor, s);
  double log_sum = 0.0;
  std::size_t count = 0;
  for (std::size_t e = 0; e + 1 < trace.skew_per_epoch.size(); ++e) {
    const double a = trace.skew_per_epoch[e] - floor;
    const double b = trace.skew_per_epoch[e + 1] - floor;
    // Only use points well above the floor; ratios near it are noise.
    if (a > 0.05 && b > 1e-6) {
      log_sum += std::log(b / a);
      ++count;
    }
  }
  trace.skew_contraction =
      count > 0 ? std::exp(log_sum / static_cast<double>(count)) : 1.0;
  return trace;
}

double expected_skew(double skew0, double q, std::size_t epoch) {
  return skew0 * std::pow(1.0 - q, static_cast<double>(epoch));
}

}  // namespace dshuf::shuffle
