// Per-epoch tag-space helpers for the PLS exchange.
//
// Tag layout: each epoch owns a disjoint window of 2 * (quota + workers)
// tags starting at epoch_tag_base(). The window has two regions:
//
//   * per-sample region (ExchangeWire::kPerSample): round i's sample
//     travels on the even tag base + 2i, its acknowledgement on the
//     adjacent odd tag;
//   * per-peer frame region (ExchangeWire::kCoalesced): the coalesced
//     frame ORIGINATING at rank p travels on base + 2*quota + 2p, its
//     acknowledgement on the adjacent odd tag. Keying frame tags by the
//     DATA frame's origin (not the destination) lets the receiver match
//     "the frame from peer p" with a plain (source, tag) receive, and the
//     sender match p's ACK of its own frame the same way.
//
// Disjoint per round, per peer AND per epoch, so duplicate copies,
// retransmissions, and stale messages that escape an epoch's drain can
// never match another round's, peer's, or epoch's receive — an escapee is
// caught by World::check_drained instead of silently corrupting the
// exchange.
//
// Every isend/irecv in exchange code must derive its tag through these
// helpers; dshuf_lint (tools/dshuf_lint) rejects raw tag literals.
#pragma once

#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace dshuf::shuffle {

/// Width of one epoch's tag window: 2*quota per-sample tags followed by
/// 2*workers per-peer frame tags.
[[nodiscard]] inline std::uint64_t epoch_tag_span(std::size_t quota,
                                                  int workers) {
  return 2ull * (quota + static_cast<std::uint64_t>(workers));
}

/// First tag of `epoch`'s window. Checks the whole window still fits in
/// the (int-typed) tag space.
[[nodiscard]] inline std::uint64_t epoch_tag_base(std::size_t epoch,
                                                  std::size_t quota,
                                                  int workers) {
  const std::uint64_t span = epoch_tag_span(quota, workers);
  const std::uint64_t base = epoch * span;
  DSHUF_CHECK_LE(base + span,
                 static_cast<std::uint64_t>(std::numeric_limits<int>::max()),
                 "exchange tag space exhausted (epoch * quota too large)");
  return base;
}

/// Tag carrying round `round`'s sample payload (per-sample wire mode).
[[nodiscard]] inline int data_tag(std::uint64_t tag_base, std::size_t round) {
  return static_cast<int>(tag_base + 2 * round);
}

/// Tag carrying round `round`'s acknowledgement (per-sample wire mode).
[[nodiscard]] inline int ack_tag(std::uint64_t tag_base, std::size_t round) {
  return static_cast<int>(tag_base + 2 * round + 1);
}

/// Tag carrying the coalesced DATA frame that rank `origin` sends this
/// epoch (one frame per destination peer, all on the origin's tag — the
/// receiver disambiguates by source rank).
[[nodiscard]] inline int frame_data_tag(std::uint64_t tag_base,
                                        std::size_t quota, int origin) {
  return static_cast<int>(tag_base + 2 * quota +
                          2 * static_cast<std::uint64_t>(origin));
}

/// Tag acknowledging rank `origin`'s coalesced frame (sent back to the
/// origin by the frame's receiver).
[[nodiscard]] inline int frame_ack_tag(std::uint64_t tag_base,
                                       std::size_t quota, int origin) {
  return frame_data_tag(tag_base, quota, origin) + 1;
}

/// True iff `tag` is a per-sample DATA tag inside this epoch's window;
/// used by the stray drain to classify late duplicates.
[[nodiscard]] inline bool is_epoch_data_tag(int tag, std::uint64_t tag_base,
                                            std::size_t quota) {
  if (tag < 0) return false;
  const auto t = static_cast<std::uint64_t>(tag);
  return t >= tag_base && t < tag_base + 2 * quota && (t - tag_base) % 2 == 0;
}

/// Round index of a per-sample DATA tag; only valid when
/// is_epoch_data_tag(tag, ...).
[[nodiscard]] inline std::size_t round_of_data_tag(int tag,
                                                   std::uint64_t tag_base) {
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(tag) - tag_base) / 2);
}

/// True iff `tag` is a coalesced-frame DATA tag inside this epoch's
/// window.
[[nodiscard]] inline bool is_epoch_frame_data_tag(int tag,
                                                  std::uint64_t tag_base,
                                                  std::size_t quota,
                                                  int workers) {
  if (tag < 0) return false;
  const auto t = static_cast<std::uint64_t>(tag);
  const std::uint64_t lo = tag_base + 2 * quota;
  const std::uint64_t hi = tag_base + epoch_tag_span(quota, workers);
  return t >= lo && t < hi && (t - lo) % 2 == 0;
}

/// Origin rank of a coalesced-frame DATA tag; only valid when
/// is_epoch_frame_data_tag(tag, ...).
[[nodiscard]] inline int origin_of_frame_data_tag(int tag,
                                                  std::uint64_t tag_base,
                                                  std::size_t quota) {
  return static_cast<int>(
      (static_cast<std::uint64_t>(tag) - tag_base - 2 * quota) / 2);
}

}  // namespace dshuf::shuffle
