// Per-epoch tag-space helpers for the PLS exchange.
//
// Tag layout: tags are namespaced per epoch (base = 2 * epoch * quota);
// round i's sample travels on the even tag base + 2i, its acknowledgement
// on the adjacent odd tag. Disjoint per round AND per epoch, so duplicate
// copies, retransmissions, and stale messages that escape an epoch's drain
// can never match another round's or a later epoch's receive — an escapee
// is caught by World::check_drained instead of silently corrupting the
// exchange.
//
// Every isend/irecv in exchange code must derive its tag through these
// helpers; dshuf_lint (tools/dshuf_lint) rejects raw tag literals.
#pragma once

#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace dshuf::shuffle {

/// First tag of `epoch`'s window when each epoch exchanges `quota` rounds.
/// Checks the whole window still fits in the (int-typed) tag space.
[[nodiscard]] inline std::uint64_t epoch_tag_base(std::size_t epoch,
                                                  std::size_t quota) {
  const std::uint64_t base = 2ull * epoch * quota;
  DSHUF_CHECK_LE(base + 2 * quota,
                 static_cast<std::uint64_t>(std::numeric_limits<int>::max()),
                 "exchange tag space exhausted (epoch * quota too large)");
  return base;
}

/// Tag carrying round `round`'s sample payload.
[[nodiscard]] inline int data_tag(std::uint64_t tag_base, std::size_t round) {
  return static_cast<int>(tag_base + 2 * round);
}

/// Tag carrying round `round`'s acknowledgement.
[[nodiscard]] inline int ack_tag(std::uint64_t tag_base, std::size_t round) {
  return static_cast<int>(tag_base + 2 * round + 1);
}

/// True iff `tag` is a DATA tag inside this epoch's window; used by the
/// stray drain to classify late duplicates.
[[nodiscard]] inline bool is_epoch_data_tag(int tag, std::uint64_t tag_base,
                                            std::size_t quota) {
  if (tag < 0) return false;
  const auto t = static_cast<std::uint64_t>(tag);
  return t >= tag_base && t < tag_base + 2 * quota && (t - tag_base) % 2 == 0;
}

/// Round index of a DATA tag; only valid when is_epoch_data_tag(tag, ...).
[[nodiscard]] inline std::size_t round_of_data_tag(int tag,
                                                   std::uint64_t tag_base) {
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(tag) - tag_base) / 2);
}

}  // namespace dshuf::shuffle
