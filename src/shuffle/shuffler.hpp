// Shuffling strategies (Section III of the paper).
//
// A Shuffler owns the epoch-by-epoch assignment of sample ids to workers:
//
//   * GlobalShuffler  — every epoch draws a fresh permutation of the WHOLE
//                       dataset and deals it to workers (PyTorch
//                       DistributedSampler semantics). Needs global data
//                       access (the paper's baseline, PFS- or full-replica-
//                       backed).
//   * LocalShuffler   — workers keep their initial shard forever and only
//                       permute it locally each epoch (Q = 0).
//   * PartialLocalShuffler — the paper's contribution: each epoch every
//                       worker exchanges k = ceil(Q * N/M) randomly chosen
//                       local samples through the balanced Algorithm-1 plan
//                       and then shuffles the updated shard locally.
//
// The driver is sequential over workers but computes exactly what the
// distributed implementation computes (every random draw is derived from
// (seed, epoch, worker) — no draw depends on execution order), so the
// simulator's results match a real M-rank run of the same seeds.
#pragma once

#include <memory>
#include <string>

#include "shuffle/exchange_plan.hpp"
#include "shuffle/shard_store.hpp"
#include "shuffle/types.hpp"

namespace dshuf::shuffle {

class Shuffler {
 public:
  virtual ~Shuffler() = default;

  /// Prepare epoch `epoch`: perform the strategy's shuffle/exchange.
  virtual void begin_epoch(std::size_t epoch) = 0;

  /// Sample ids worker `worker` processes this epoch, in visit order.
  [[nodiscard]] virtual const std::vector<SampleId>& local_order(
      int worker) const = 0;

  [[nodiscard]] virtual int workers() const = 0;
  [[nodiscard]] virtual std::string label() const = 0;

  /// Exchange statistics for the last begin_epoch (null when the strategy
  /// does not exchange).
  [[nodiscard]] virtual const ExchangeStats* last_stats() const {
    return nullptr;
  }
};

/// Global shuffling: permute all of [0, N), deal strided to workers.
class GlobalShuffler final : public Shuffler {
 public:
  GlobalShuffler(std::size_t dataset_size, int workers, std::uint64_t seed);

  void begin_epoch(std::size_t epoch) override;
  [[nodiscard]] const std::vector<SampleId>& local_order(
      int worker) const override;
  [[nodiscard]] int workers() const override { return workers_; }
  [[nodiscard]] std::string label() const override { return "global"; }

 private:
  std::size_t dataset_size_;
  int workers_;
  Rng base_rng_;
  std::vector<std::vector<SampleId>> orders_;
};

/// Local shuffling: fixed shards, per-epoch local permutation.
class LocalShuffler final : public Shuffler {
 public:
  LocalShuffler(std::vector<std::vector<SampleId>> shards, std::uint64_t seed);

  void begin_epoch(std::size_t epoch) override;
  [[nodiscard]] const std::vector<SampleId>& local_order(
      int worker) const override;
  [[nodiscard]] int workers() const override {
    return static_cast<int>(orders_.size());
  }
  [[nodiscard]] std::string label() const override { return "local"; }

 private:
  Rng base_rng_;
  std::vector<std::vector<SampleId>> orders_;
};

/// How a worker selects which local samples to contribute to the global
/// exchange (Algorithm 1 line 1). The paper uses a uniform random pick;
/// the importance-based policies implement its Section IV-B future-work
/// direction — biasing the exchange toward informative samples to counter
/// the sampling bias of partial shuffling.
enum class PickPolicy {
  kUniform,   // random permutation prefix (the paper's Algorithm 1)
  kHighLoss,  // export the samples this worker finds hardest
  kLowLoss,   // export the samples this worker has mastered
};

std::string to_string(PickPolicy p);

/// Partial local shuffling (the paper's contribution).
class PartialLocalShuffler final : public Shuffler {
 public:
  /// `q` is the exchange fraction; `exchange_on_first_epoch` controls
  /// whether epoch 0 already exchanges (the paper exchanges before each
  /// epoch; the initial distribution counts as "before epoch 0" so the
  /// default is true).
  PartialLocalShuffler(std::vector<std::vector<SampleId>> shards, double q,
                       std::uint64_t seed, bool exchange_on_first_epoch = true);

  void begin_epoch(std::size_t epoch) override;
  [[nodiscard]] const std::vector<SampleId>& local_order(
      int worker) const override;
  [[nodiscard]] int workers() const override {
    return static_cast<int>(stores_.size());
  }
  [[nodiscard]] std::string label() const override;
  [[nodiscard]] const ExchangeStats* last_stats() const override {
    return &stats_;
  }

  [[nodiscard]] double q() const { return q_; }
  /// Per-worker stores (tests verify capacity bounds and conservation).
  [[nodiscard]] const std::vector<ShardStore>& stores() const {
    return stores_;
  }
  /// The plan used by the last begin_epoch (for cross-checking against a
  /// real message-passing execution).
  [[nodiscard]] const ExchangePlan* last_plan() const { return plan_.get(); }

  /// Switch the exchange-pick policy. For the importance policies, callers
  /// must provide fresh per-sample scores (indexed by SampleId) before
  /// each begin_epoch via set_sample_scores(); without scores the policy
  /// silently behaves uniformly for that epoch.
  void set_pick_policy(PickPolicy policy) { pick_policy_ = policy; }
  [[nodiscard]] PickPolicy pick_policy() const { return pick_policy_; }
  void set_sample_scores(std::vector<float> scores) {
    scores_ = std::move(scores);
  }

 private:
  /// Outgoing sample selection for one worker under the active policy.
  [[nodiscard]] std::vector<SampleId> select_outgoing(std::size_t epoch,
                                                      int worker,
                                                      std::size_t quota) const;

  double q_;
  std::uint64_t seed_;
  bool exchange_on_first_epoch_;
  Rng base_rng_;
  std::vector<ShardStore> stores_;
  std::vector<std::vector<SampleId>> orders_;
  std::unique_ptr<ExchangePlan> plan_;
  ExchangeStats stats_;
  PickPolicy pick_policy_ = PickPolicy::kUniform;
  std::vector<float> scores_;
};

/// Factory covering all three strategies. `shards` is the initial
/// partition; global ignores it beyond N and M.
std::unique_ptr<Shuffler> make_shuffler(Strategy strategy, double q,
                                        std::size_t dataset_size,
                                        std::vector<std::vector<SampleId>> shards,
                                        std::uint64_t seed);

/// The per-worker pick permutation of Algorithm 1 line 1: which local slots
/// worker `worker` contributes in epoch `epoch`. Shared helper so the
/// sequential driver and the message-passing executor select identical
/// samples.
std::vector<std::uint32_t> pick_permutation(std::uint64_t seed,
                                            std::size_t epoch, int worker,
                                            std::size_t shard_size);

/// pick_permutation written into `out` (resized; capacity reused). Same
/// draw sequence — the steady-state exchange uses this to avoid the
/// per-epoch allocation.
void pick_permutation_into(std::uint64_t seed, std::size_t epoch, int worker,
                           std::size_t shard_size,
                           std::vector<std::uint32_t>& out);

/// The end-of-epoch local shuffle applied to a worker's shard ids. All
/// drivers (PartialLocalShuffler, Scheduler, and callers of
/// run_pls_exchange_epoch) must apply this same stream for their stores to
/// stay bit-compatible across epochs.
void post_exchange_local_shuffle(std::uint64_t seed, std::size_t epoch,
                                 int worker, std::vector<SampleId>& ids);

}  // namespace dshuf::shuffle
