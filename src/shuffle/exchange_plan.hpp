// Algorithm 1 of the paper: the balanced global exchange.
//
// Each epoch, every worker exchanges k = ceil(Q * N/M) samples. The plan
// consists of k "rounds"; round i holds a random permutation dest_i of the
// ranks, derived from a seed SHARED by all workers (paper: "all workers use
// the same random seed ... to assure single source and single destination
// for each exchanged sample"). In round i, worker r sends its i-th selected
// sample to dest_i[r] and receives exactly one sample from the unique
// worker s with dest_i[s] == r. Because every round is a permutation, every
// worker sends AND receives exactly k samples — the balance property the
// paper's scheme guarantees and the naive pick-a-random-destination scheme
// does not (see bench_ablation_balance).
//
// The plan is a pure function of (seed, epoch, workers, quota): any worker
// can compute its own sends/receives locally, which is what makes the
// distributed implementation require only a local view.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace dshuf::shuffle {

class ExchangePlan {
 public:
  /// Empty plan; fill it with rebuild(). Exists so steady-state callers
  /// can keep one plan in scratch storage and rebuild it in place each
  /// epoch without reallocating the round tables.
  ExchangePlan() = default;

  /// Build the plan for one epoch. `per_worker_quota` is k, the number of
  /// samples each worker contributes (already scaled by Q by the caller).
  /// `allow_self` keeps the paper's behaviour of permitting a worker to
  /// "send to itself" when the permutation fixes its rank (a no-op
  /// transfer); disabling it re-draws fixed points for an ablation.
  ExchangePlan(std::uint64_t seed, std::size_t epoch, int workers,
               std::size_t per_worker_quota, bool allow_self = true);

  /// Recompute the plan in place. Identical RNG draw sequence to the
  /// constructor (same (seed, epoch, workers, quota) => same plan, bit for
  /// bit); with unchanged workers/quota no storage is reallocated.
  void rebuild(std::uint64_t seed, std::size_t epoch, int workers,
               std::size_t per_worker_quota, bool allow_self = true);

  /// Recompute in place as the topology-constrained plan: every round is
  /// still a permutation of all groups*group_size ranks (the balance
  /// guarantee is untouched), but each is the product of a group-level
  /// permutation and per-source-group local-slot permutations, with the
  /// first round(intra_fraction * quota) rounds using the identity group
  /// permutation. Draw-for-draw identical to HierarchicalExchangePlan with
  /// the same arguments — the property suite asserts the tables match bit
  /// for bit — so the message-passing exchange and the sequential
  /// hierarchical driver stay equivalent.
  void rebuild_grouped(std::uint64_t seed, std::size_t epoch, int groups,
                       int group_size, std::size_t per_worker_quota,
                       double intra_fraction);

  [[nodiscard]] int workers() const { return workers_; }
  [[nodiscard]] std::size_t rounds() const { return rounds_.size(); }

  /// Destination of worker `rank`'s round-i sample.
  [[nodiscard]] int dest(std::size_t round, int rank) const;
  /// Source whose round-i sample arrives at worker `rank`.
  [[nodiscard]] int source(std::size_t round, int rank) const;

  /// All destinations for a rank across rounds (send list, round order).
  [[nodiscard]] std::vector<int> dests_for(int rank) const;
  /// All sources for a rank across rounds (receive list, round order).
  [[nodiscard]] std::vector<int> sources_for(int rank) const;

  /// Number of round-fixed-points (rank sends to itself) — diagnostics.
  [[nodiscard]] std::size_t self_sends() const;

 private:
  struct Round {
    std::vector<int> dest;  // dest[rank]
    std::vector<int> src;   // inverse permutation
  };

  int workers_ = 0;
  std::vector<Round> rounds_;
  std::vector<std::uint32_t> perm_;   // rebuild scratch (capacity reused)
  std::vector<std::uint32_t> gperm_;  // grouped-rebuild scratch
};

/// Everything that determines one epoch's plan. groups <= 1 (or group_size
/// == 0) means the flat Algorithm-1 plan; otherwise the grouped one.
struct PlanSpec {
  std::uint64_t seed = 0;
  std::size_t epoch = 0;
  int workers = 0;
  std::size_t quota = 0;
  int groups = 1;
  int group_size = 0;
  double intra_fraction = 0.5;

  friend bool operator==(const PlanSpec&, const PlanSpec&) = default;
};

/// One plan per epoch per PROCESS instead of per rank. A thousand virtual
/// ranks each rebuilding a quota x M table would cost O(M^2 * quota)
/// memory — the single reason 4096-rank worlds would not fit — so the
/// virtual backend turns interning on and every rank's scratch holds a
/// shared_ptr to the identical immutable plan. The cache keeps the last
/// few epochs (ranks at an epoch boundary may straddle two); entries drop
/// out of the cache eagerly but stay alive for as long as any scratch
/// still references them.
///
/// Interning stays OFF by default: the threaded path's in-place rebuild is
/// what keeps the steady-state epoch allocation-free
/// (tests/test_exchange_alloc.cpp), and interning allocates one plan per
/// epoch. Same flip discipline as the other process-wide exchange
/// policies: set it from the driving thread before World::run.
[[nodiscard]] bool plan_interning_enabled();
void set_plan_interning(bool on);

class ScopedPlanInterning {
 public:
  explicit ScopedPlanInterning(bool on) : prev_(plan_interning_enabled()) {
    set_plan_interning(on);
  }
  ~ScopedPlanInterning() { set_plan_interning(prev_); }
  ScopedPlanInterning(const ScopedPlanInterning&) = delete;
  ScopedPlanInterning& operator=(const ScopedPlanInterning&) = delete;

 private:
  bool prev_;
};

/// Fetch (building on miss) the shared immutable plan for `spec`.
[[nodiscard]] std::shared_ptr<const ExchangePlan> intern_exchange_plan(
    const PlanSpec& spec);

/// Quota k = ceil(Q * shard_size), clamped to the shard size. Q outside
/// [0, 1] is rejected.
std::size_t exchange_quota(std::size_t shard_size, double q);

/// Naive unbalanced variant for the ablation bench: each worker draws an
/// independent random destination per sample (what DeepIO-style
/// uncontrolled exchange does). Returns receive counts per worker.
std::vector<std::size_t> naive_exchange_recv_counts(std::uint64_t seed,
                                                    std::size_t epoch,
                                                    int workers,
                                                    std::size_t quota);

}  // namespace dshuf::shuffle
