#include "shuffle/traffic.hpp"

#include "util/error.hpp"

namespace dshuf::shuffle {

TrafficReport compute_traffic(const TrafficParams& p) {
  DSHUF_CHECK_GT(p.dataset_bytes, 0.0, "dataset size must be positive");
  DSHUF_CHECK_GT(p.workers, 0U, "worker count must be positive");
  DSHUF_CHECK(p.q >= 0.0 && p.q <= 1.0, "Q must be in [0, 1]");
  TrafficReport r;
  r.shard_bytes = p.dataset_bytes / static_cast<double>(p.workers);
  r.sent_per_worker = p.q * r.shard_bytes;
  r.local_read_per_worker = (1.0 - p.q) * r.shard_bytes;
  r.pfs_read_per_worker_gs = r.shard_bytes;
  r.storage_local = r.shard_bytes;
  r.storage_pls = (1.0 + p.q) * r.shard_bytes;
  r.storage_global = p.dataset_bytes;
  r.pls_fraction_of_dataset = r.storage_pls / p.dataset_bytes;
  return r;
}

std::size_t pls_exchange_payload_bytes(std::size_t quota,
                                       std::size_t bytes_per_sample) {
  return quota * bytes_per_sample;
}

}  // namespace dshuf::shuffle
