#include "netsim/virtual_comm.hpp"

#include <ucontext.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DSHUF_ASAN_FIBERS 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define DSHUF_ASAN_FIBERS 1
#endif

#ifdef DSHUF_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

#include "netsim/flow_engine.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace dshuf::netsim {

namespace detail {

namespace {

/// Same key the threaded injector uses for its per-source attempt
/// counters (file-local there, so restated): fault determinism requires
/// the two backends to count attempts identically.
std::uint64_t link_key(int dest, int tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dest)) << 32) |
         static_cast<std::uint32_t>(tag);
}

bool matches_msg(int want_source, int want_tag, const comm::Message& m) {
  return (want_source == comm::kAnySource || want_source == m.source) &&
         (want_tag == comm::kAnyTag || want_tag == m.tag);
}

}  // namespace

class VirtualWorldState;
struct VirtualRequestState;

/// One virtual rank: a ucontext fiber plus the thread-local state (log
/// context, trace track) that must travel with the logical rank rather
/// than the OS thread all fibers share.
struct Fiber {
  ucontext_t ctx{};
  std::unique_ptr<char[]> stack;
  std::size_t stack_size = 0;
  int rank = -1;
  bool done = false;
  bool runnable = false;  // already queued in run_queue_
  const char* blocked_reason = nullptr;
  std::exception_ptr error;
  LogContextState log_ctx{};
  int trace_track = 0;
#ifdef DSHUF_ASAN_FIBERS
  void* fake_stack = nullptr;
#endif
};

/// Fiber-world request state. Single-threaded by construction, so no
/// locks: completion flips `done` and wakes the owning fiber.
struct VirtualRequestState final : comm::detail::RequestState {
  VirtualWorldState* w = nullptr;
  int owner = -1;  // rank whose mailbox the receive is parked in
  int source = comm::kAnySource;
  int tag = comm::kAnyTag;
  bool done = false;
  bool cancelled_flag = false;
  comm::Message msg;

  bool test() override { return done; }
  void wait() override;
  bool wait_for(std::chrono::microseconds timeout) override;
  bool cancelled() override { return cancelled_flag; }
  const comm::Message& message() override {
    DSHUF_CHECK(done, "message() before completion");
    return msg;
  }
};

struct VMailbox {
  std::deque<comm::Message> arrived;
  // Unmatched receives in post order (deposit matches oldest-first,
  // mirroring the threaded mailbox's pending queue).
  std::vector<std::shared_ptr<VirtualRequestState>> parked;
};

class VirtualWorldState {
 public:
  VirtualWorldState(int num_ranks, VirtualWorldOptions opts)
      : size_(num_ranks), opts_(opts) {
    DSHUF_CHECK_GT(num_ranks, 0, "world needs at least one rank");
    DSHUF_CHECK_GE(opts_.fiber_stack_bytes, std::size_t{64} * 1024,
                   "fiber stacks below 64 KiB overflow under logging");
    if (opts_.topology) {
      topo_ = opts_.topology->resolved_for(num_ranks);
      DSHUF_CHECK_GT(topo_->intra_bw_bps, 0.0, "intra bandwidth must be > 0");
      DSHUF_CHECK_GT(topo_->inter_bw_bps, 0.0, "inter bandwidth must be > 0");
    } else {
      DSHUF_CHECK_GT(opts_.caps.nic_out_bps, 0.0, "NIC egress must be > 0");
      DSHUF_CHECK_GT(opts_.caps.nic_in_bps, 0.0, "NIC ingress must be > 0");
    }
    DSHUF_CHECK_GE(opts_.caps.fabric_bps, 0.0, "fabric capacity < 0");
    DSHUF_CHECK_GE(opts_.caps.per_message_latency_s, 0.0, "latency < 0");
    DSHUF_CHECK_GE(opts_.event_quantum_us, std::uint64_t{1},
                   "event quantum must be at least 1 us");
    latency_us_ = static_cast<std::uint64_t>(
        std::llround(opts_.caps.per_message_latency_s * 1e6));

    // Link table: [0,M) per-rank egress, [M,2M) per-rank ingress, then —
    // under a topology — one uplink and one downlink per group, then an
    // optional shared fabric pool. Matches simulate_flows' flat layout so
    // the analytic cross-checks price the same constraints.
    const std::size_t m = static_cast<std::size_t>(num_ranks);
    const double out_bps = topo_ ? topo_->intra_bw_bps : opts_.caps.nic_out_bps;
    const double in_bps = topo_ ? topo_->intra_bw_bps : opts_.caps.nic_in_bps;
    link_caps_.assign(m, out_bps);
    link_caps_.insert(link_caps_.end(), m, in_bps);
    if (topo_) {
      const std::size_t g = static_cast<std::size_t>(topo_->groups);
      link_caps_.insert(link_caps_.end(), 2 * g, topo_->inter_bw_bps);
    }
    if (opts_.caps.fabric_bps > 0) {
      fabric_link_ = static_cast<int>(link_caps_.size());
      link_caps_.push_back(opts_.caps.fabric_bps);
    }

    mailboxes_.resize(m);
    pools_.resize(m);
    attempts_.resize(m);
    slots_.init(num_ranks);
  }

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] std::uint64_t now_us() const { return now_us_; }
  [[nodiscard]] bool has_fault_plan() const { return fault_plan_.has_value(); }
  [[nodiscard]] comm::FaultStats fault_stats() const { return stats_; }
  [[nodiscard]] VirtualWorld::RunStats last_run_stats() const {
    return last_run_stats_;
  }
  [[nodiscard]] comm::BufferPool& pool(int rank) {
    return pools_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] comm::detail::CollectiveSlots& slots() { return slots_; }

  void set_fault_plan(const comm::FaultPlan& plan) {
    DSHUF_CHECK(!running_, "cannot change the fault plan mid-run");
    fault_plan_ = plan;
  }
  void clear_fault_plan() {
    DSHUF_CHECK(!running_, "cannot change the fault plan mid-run");
    fault_plan_.reset();
  }

  void run(const std::function<void(comm::Communicator&)>& body);

  // ---- fiber-side primitives (called from rank fibers) ----

  void send_from(int src, int dest, comm::Message msg);
  comm::Request post_irecv(int rank, int source, int tag);
  std::optional<comm::Message> poll_on(int rank, int source, int tag);
  bool cancel_on(int rank, comm::Request& request);
  void barrier_on_fiber();
  void fence_on_fiber();
  void backoff_on_fiber(std::chrono::microseconds pause);

  /// Suspend the current fiber until someone makes it runnable again.
  /// Every caller loops on its predicate — wakeups may be spurious (stale
  /// timers, barrier releases meant for a past generation).
  void block(const char* reason);
  /// block(), with a timer event guaranteeing a wake at `deadline`.
  void block_until(std::uint64_t deadline_us, const char* reason);

  void fiber_entry();

 private:
  enum class EventKind : std::uint8_t { kInject, kTimer };

  /// Heap event: a message entering the network (kInject — becomes a flow
  /// or a direct deposit) or a fiber's requested wake (kTimer).
  struct Event {
    std::uint64_t due_us = 0;
    std::uint64_t seq = 0;  // FIFO tiebreak — determinism at equal times
    EventKind kind = EventKind::kTimer;
    int src = -1;
    int dest = -1;
    bool fault_counted = false;
    int fiber = -1;
    comm::Message msg;
    bool operator<(const Event& o) const {
      // std::push_heap keeps the LARGEST on top; invert for earliest.
      return due_us != o.due_us ? due_us > o.due_us : seq > o.seq;
    }
  };

  struct FlowMsg {
    int dest = -1;
    bool fault_counted = false;
    comm::Message msg;
  };

  void make_runnable(int fi) {
    Fiber& f = fibers_[static_cast<std::size_t>(fi)];
    if (f.done || f.runnable) return;
    f.runnable = true;
    run_queue_.push_back(fi);
  }

  void resume(int fi);
  void yield_to_scheduler();
  void abort_world();

  void schedule_inject(int src, int dest, comm::Message msg,
                       std::uint64_t extra_delay_us, bool fault_counted);
  void schedule_timer(int fiber, std::uint64_t due_us);
  void path_for(int src, int dest, std::vector<int>& path) const;
  void start_flow(int src, int dest, bool fault_counted, comm::Message msg);
  void deliver(int dest, comm::Message msg, bool fault_counted);
  void deposit(int dest, comm::Message msg);
  bool step_time();
  void check_drained();

  int size_;
  VirtualWorldOptions opts_;
  std::optional<shuffle::Topology> topo_;
  std::vector<double> link_caps_;
  int fabric_link_ = -1;
  std::uint64_t latency_us_ = 0;

  std::vector<VMailbox> mailboxes_;
  std::vector<comm::BufferPool> pools_;
  comm::detail::CollectiveSlots slots_;

  // Fault oracle state — same shape as FaultInjector's (per-source maps
  // keyed by (dest, tag)), reset at each run() so schedules replay.
  std::optional<comm::FaultPlan> fault_plan_;
  std::vector<std::map<std::uint64_t, std::uint64_t>> attempts_;
  comm::FaultStats stats_;

  // Scheduler.
  std::vector<Fiber> fibers_;
  std::deque<int> run_queue_;
  int current_ = -1;  // fiber index executing right now; -1 = scheduler
  ucontext_t sched_ctx_{};
  bool running_ = false;
  bool aborted_ = false;
  const std::function<void(comm::Communicator&)>* body_ = nullptr;
  LogContextState sched_log_ctx_{};
  int sched_track_ = 0;
#ifdef DSHUF_ASAN_FIBERS
  const void* sched_stack_bottom_ = nullptr;
  std::size_t sched_stack_size_ = 0;
#endif

  // Barrier (gen/count, waiters released in arrival order).
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
  std::vector<int> barrier_waiters_;
  std::vector<int> fence_waiters_;

  // Virtual time and the network.
  std::uint64_t now_us_ = 0;
  std::uint64_t run_start_us_ = 0;
  obs::VirtualClock vclock_;
  std::unique_ptr<FlowEngine> engine_;
  std::uint64_t engine_origin_us_ = 0;
  std::vector<Event> events_;
  std::uint64_t event_seq_ = 0;
  std::size_t pending_inject_ = 0;
  std::vector<FlowMsg> flow_msgs_;
  std::uint64_t flows_admitted_ = 0;
  std::vector<int> path_scratch_;
  std::vector<std::pair<FlowEngine::FlowId, double>> finished_scratch_;

  std::uint64_t switches_ = 0;
  VirtualWorld::RunStats last_run_stats_;
};

namespace {

// makecontext's entry takes no arguments; the running world parks itself
// here for the trampoline. One world runs per OS thread at a time (run()
// is not reentrant), so a plain thread_local suffices.
thread_local VirtualWorldState* g_running_world = nullptr;

extern "C" void dshuf_fiber_trampoline() { g_running_world->fiber_entry(); }

}  // namespace

void VirtualRequestState::wait() {
  while (!done) {
    DSHUF_CHECK(!cancelled_flag, "wait() on a cancelled request");
    w->block("request wait");
  }
}

bool VirtualRequestState::wait_for(std::chrono::microseconds timeout) {
  const std::uint64_t deadline =
      w->now_us() +
      static_cast<std::uint64_t>(std::max<std::int64_t>(0, timeout.count()));
  while (!done) {
    DSHUF_CHECK(!cancelled_flag, "wait_for() on a cancelled request");
    if (w->now_us() >= deadline) return false;
    w->block_until(deadline, "request wait_for");
  }
  return true;
}

/// The fiber-rank endpoint over VirtualWorldState. Internal to this TU:
/// the only way to get one is through VirtualWorld::run.
class VirtualCommunicator final : public comm::Communicator {
 public:
  VirtualCommunicator(VirtualWorldState* w, int rank)
      : Communicator(rank), w_(w) {}

  [[nodiscard]] int size() const override { return w_->size(); }

  comm::Request isend(int dest, int tag,
                      std::vector<std::byte> payload) override {
    send(dest, tag, std::move(payload));
    // Buffered send: locally complete, like the threaded backend (even a
    // dropped message "completes").
    auto state = std::make_shared<VirtualRequestState>();
    state->w = w_;
    state->done = true;
    return make_request(std::move(state));
  }

  void send(int dest, int tag, std::vector<std::byte> payload) override {
    DSHUF_CHECK(dest >= 0 && dest < size(), "send destination out of range");
    comm::Message msg;
    msg.source = rank_;
    msg.tag = tag;
    msg.payload = std::move(payload);
    DSHUF_COUNTER("comm.isend").add();
    DSHUF_COUNTER("comm.bytes_sent").add(msg.payload.size());
    w_->send_from(rank_, dest, std::move(msg));
  }

  comm::Request irecv(int source, int tag) override {
    DSHUF_CHECK(source == comm::kAnySource || (source >= 0 && source < size()),
                "irecv source out of range");
    return w_->post_irecv(rank_, source, tag);
  }

  comm::Message recv(int source, int tag) override {
    comm::Request r = irecv(source, tag);
    r.wait();
    return r.message();
  }

  std::optional<comm::Message> poll(int source, int tag) override {
    return w_->poll_on(rank_, source, tag);
  }

  bool cancel(comm::Request& request) override {
    DSHUF_CHECK(request.valid(), "cancel() on an empty request");
    return w_->cancel_on(rank_, request);
  }

  [[nodiscard]] bool fault_injection_enabled() const override {
    return w_->has_fault_plan();
  }

  void fence_faults() override { w_->fence_on_fiber(); }

  void barrier() override {
    DSHUF_COUNTER("comm.barrier").add();
    w_->barrier_on_fiber();
  }

  [[nodiscard]] std::uint64_t now_us() override { return w_->now_us(); }

  void backoff(std::chrono::microseconds pause) override {
    w_->backoff_on_fiber(pause);
  }

  [[nodiscard]] comm::BufferPool& pool() override { return w_->pool(rank_); }

  // make_request / request_state are protected in the base; the world's
  // mailbox code (not itself a Communicator) goes through these.
  static comm::Request wrap(std::shared_ptr<comm::detail::RequestState> s) {
    return make_request(std::move(s));
  }
  [[nodiscard]] static const std::shared_ptr<comm::detail::RequestState>&
  state_of(const comm::Request& r) {
    return request_state(r);
  }

 protected:
  [[nodiscard]] comm::detail::CollectiveSlots& collective_slots() override {
    return w_->slots();
  }

 private:
  VirtualWorldState* w_;
};

// ---- fiber switching ----

void VirtualWorldState::resume(int fi) {
  Fiber& f = fibers_[static_cast<std::size_t>(fi)];
  current_ = fi;
  ++switches_;
  // The logical rank's thread-locals ride the fiber, not the OS thread.
  restore_log_context(f.log_ctx);
  obs::Tracer::set_thread_track(f.trace_track);
#ifdef DSHUF_ASAN_FIBERS
  void* sched_fake = nullptr;
  __sanitizer_start_switch_fiber(&sched_fake, f.stack.get(), f.stack_size);
#endif
  swapcontext(&sched_ctx_, &f.ctx);
#ifdef DSHUF_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(sched_fake, nullptr, nullptr);
#endif
  f.log_ctx = log_context_state();
  f.trace_track = obs::Tracer::thread_track();
  restore_log_context(sched_log_ctx_);
  obs::Tracer::set_thread_track(sched_track_);
  current_ = -1;
}

void VirtualWorldState::yield_to_scheduler() {
  Fiber& f = fibers_[static_cast<std::size_t>(current_)];
#ifdef DSHUF_ASAN_FIBERS
  // A finished fiber's fake stack dies with it (nullptr handle).
  __sanitizer_start_switch_fiber(f.done ? nullptr : &f.fake_stack,
                                 sched_stack_bottom_, sched_stack_size_);
#endif
  swapcontext(&f.ctx, &sched_ctx_);
#ifdef DSHUF_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(f.fake_stack, nullptr, nullptr);
#endif
}

void VirtualWorldState::fiber_entry() {
  Fiber& f = fibers_[static_cast<std::size_t>(current_)];
#ifdef DSHUF_ASAN_FIBERS
  // First entry into any fiber: complete the switch and learn the
  // scheduler stack's bounds for the way back.
  __sanitizer_finish_switch_fiber(nullptr, &sched_stack_bottom_,
                                  &sched_stack_size_);
#endif
  try {
    obs::Tracer::set_thread_track(f.rank);
    if (obs::Tracer::instance().enabled()) {
      obs::Tracer::set_thread_name("rank " + std::to_string(f.rank));
    }
    VirtualCommunicator c(this, f.rank);
    (*body_)(c);
  } catch (...) {
    f.error = std::current_exception();
    abort_world();
  }
  f.done = true;
  yield_to_scheduler();
  DSHUF_CHECK(false, "resumed a finished fiber");
}

void VirtualWorldState::abort_world() {
  aborted_ = true;
  // Wake every blocked fiber (rank order); their blocking primitives
  // observe the flag and unwind.
  for (int fi = 0; fi < size_; ++fi) {
    if (fi != current_) make_runnable(fi);
  }
}

void VirtualWorldState::block(const char* reason) {
  Fiber& f = fibers_[static_cast<std::size_t>(current_)];
  f.blocked_reason = reason;
  yield_to_scheduler();
  f.blocked_reason = nullptr;
  DSHUF_CHECK(!aborted_, "world aborted while in " << reason);
}

void VirtualWorldState::block_until(std::uint64_t deadline_us,
                                    const char* reason) {
  schedule_timer(current_, deadline_us);
  block(reason);
}

// ---- data plane ----

void VirtualWorldState::send_from(int src, int dest, comm::Message msg) {
  // Loopback never crosses the wire: deposit synchronously (same as the
  // threaded backend), fault-exempt.
  if (src == dest) {
    if (fault_plan_) {
      ++stats_.submitted;
      ++stats_.delivered;
      DSHUF_COUNTER("comm.fault.submitted").add();
      DSHUF_COUNTER("comm.fault.delivered").add();
    }
    deposit(dest, std::move(msg));
    return;
  }

  std::uint64_t extra_delay_us = 0;
  bool counted = false;
  if (fault_plan_) {
    counted = true;
    const std::uint64_t attempt =
        attempts_[static_cast<std::size_t>(src)][link_key(dest, msg.tag)]++;
    const comm::FaultDecision d =
        fault_plan_->decide(src, dest, msg.tag, attempt);
    ++stats_.submitted;
    DSHUF_COUNTER("comm.fault.submitted").add();

    // Stall window measured from run start in VIRTUAL time.
    std::uint64_t stall_extra = 0;
    const std::uint32_t stall = fault_plan_->stall_us(src);
    if (stall > 0) {
      const std::uint64_t stall_end = run_start_us_ + stall;
      if (now_us_ < stall_end) stall_extra = stall_end - now_us_;
    }

    if (d.drop) {
      ++stats_.dropped;
      DSHUF_COUNTER("comm.fault.dropped").add();
      return;
    }
    if (d.duplicate) {
      ++stats_.duplicated;
      DSHUF_COUNTER("comm.fault.duplicated").add();
      // Extra copy enters the network immediately (no delay/stall) —
      // unlike the threaded injector we count its `delivered` when it
      // lands, not here, so `delivered` means "deposited" uniformly;
      // the totals agree once the world is quiescent.
      schedule_inject(src, dest, msg, 0, counted);
    }
    extra_delay_us = static_cast<std::uint64_t>(d.delay_us) + stall_extra;
    if (d.delay_us > 0) {
      ++stats_.delayed;
      DSHUF_COUNTER("comm.fault.delayed").add();
    }
    if (stall_extra > 0) {
      ++stats_.stalled;
      DSHUF_COUNTER("comm.fault.stalled").add();
    }
  }
  schedule_inject(src, dest, std::move(msg), extra_delay_us, counted);
}

void VirtualWorldState::schedule_inject(int src, int dest, comm::Message msg,
                                        std::uint64_t extra_delay_us,
                                        bool fault_counted) {
  Event ev;
  ev.due_us = now_us_ + extra_delay_us + latency_us_;
  ev.seq = event_seq_++;
  ev.kind = EventKind::kInject;
  ev.src = src;
  ev.dest = dest;
  ev.fault_counted = fault_counted;
  ev.msg = std::move(msg);
  events_.push_back(std::move(ev));
  std::push_heap(events_.begin(), events_.end());
  ++pending_inject_;
}

void VirtualWorldState::schedule_timer(int fiber, std::uint64_t due_us) {
  Event ev;
  ev.due_us = std::max(due_us, now_us_);
  ev.seq = event_seq_++;
  ev.kind = EventKind::kTimer;
  ev.fiber = fiber;
  events_.push_back(std::move(ev));
  std::push_heap(events_.begin(), events_.end());
}

void VirtualWorldState::path_for(int src, int dest,
                                 std::vector<int>& path) const {
  path.clear();
  path.push_back(src);           // egress NIC
  path.push_back(size_ + dest);  // ingress NIC
  if (topo_) {
    const int gs = topo_->group_of(src);
    const int gd = topo_->group_of(dest);
    if (gs != gd) {
      path.push_back(2 * size_ + gs);                  // source group uplink
      path.push_back(2 * size_ + topo_->groups + gd);  // dest group downlink
      if (topo_->leader_aggregation) {
        // Store-and-forward staging through both group leaders: the frame
        // also crosses the leaders' NICs (in+out), unless an endpoint IS
        // the leader (then its own NIC is already on the path).
        const int ls = topo_->leader_of(gs);
        const int ld = topo_->leader_of(gd);
        if (ls != src) {
          path.push_back(size_ + ls);
          path.push_back(ls);
        }
        if (ld != dest) {
          path.push_back(size_ + ld);
          path.push_back(ld);
        }
      }
      if (fabric_link_ >= 0) path.push_back(fabric_link_);
    }
    // Intra-group traffic rides node-local links; no fabric.
  } else if (fabric_link_ >= 0) {
    path.push_back(fabric_link_);
  }
}

void VirtualWorldState::start_flow(int src, int dest, bool fault_counted,
                                   comm::Message msg) {
  path_for(src, dest, path_scratch_);
  const double bytes = static_cast<double>(msg.payload.size());
  const FlowEngine::FlowId id = engine_->add_flow(bytes, path_scratch_);
  if (flow_msgs_.size() <= id) flow_msgs_.resize(id + 1);
  FlowMsg& fm = flow_msgs_[id];
  fm.dest = dest;
  fm.fault_counted = fault_counted;
  fm.msg = std::move(msg);
  ++flows_admitted_;
}

void VirtualWorldState::deliver(int dest, comm::Message msg,
                                bool fault_counted) {
  if (fault_counted) {
    ++stats_.delivered;
    DSHUF_COUNTER("comm.fault.delivered").add();
  }
  deposit(dest, std::move(msg));
}

void VirtualWorldState::deposit(int dest, comm::Message msg) {
  VMailbox& mb = mailboxes_[static_cast<std::size_t>(dest)];
  for (auto it = mb.parked.begin(); it != mb.parked.end(); ++it) {
    VirtualRequestState& st = **it;
    if (matches_msg(st.source, st.tag, msg) &&
        (st.source == comm::kAnySource || st.source == msg.source)) {
      std::shared_ptr<VirtualRequestState> state = std::move(*it);
      mb.parked.erase(it);
      state->msg = std::move(msg);
      state->done = true;
      make_runnable(state->owner);
      return;
    }
  }
  mb.arrived.push_back(std::move(msg));
}

comm::Request VirtualWorldState::post_irecv(int rank, int source, int tag) {
  auto state = std::make_shared<VirtualRequestState>();
  state->w = this;
  state->owner = rank;
  state->source = source;
  state->tag = tag;
  VMailbox& mb = mailboxes_[static_cast<std::size_t>(rank)];
  for (auto it = mb.arrived.begin(); it != mb.arrived.end(); ++it) {
    if (matches_msg(source, tag, *it)) {
      state->msg = std::move(*it);
      mb.arrived.erase(it);
      state->done = true;
      return VirtualCommunicator::wrap(std::move(state));
    }
  }
  mb.parked.push_back(state);
  return VirtualCommunicator::wrap(std::move(state));
}

std::optional<comm::Message> VirtualWorldState::poll_on(int rank, int source,
                                                        int tag) {
  VMailbox& mb = mailboxes_[static_cast<std::size_t>(rank)];
  for (auto it = mb.arrived.begin(); it != mb.arrived.end(); ++it) {
    if (matches_msg(source, tag, *it)) {
      comm::Message m = std::move(*it);
      mb.arrived.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

bool VirtualWorldState::cancel_on(int rank, comm::Request& request) {
  auto* st = dynamic_cast<VirtualRequestState*>(
      VirtualCommunicator::state_of(request).get());
  if (st == nullptr) return false;
  VMailbox& mb = mailboxes_[static_cast<std::size_t>(rank)];
  for (auto it = mb.parked.begin(); it != mb.parked.end(); ++it) {
    if (it->get() == st) {
      mb.parked.erase(it);
      st->cancelled_flag = true;
      return true;
    }
  }
  return false;  // already matched (or a send request) — nothing to cancel
}

// ---- rendezvous primitives ----

void VirtualWorldState::barrier_on_fiber() {
  const std::uint64_t gen = barrier_gen_;
  if (++barrier_count_ == size_) {
    barrier_count_ = 0;
    ++barrier_gen_;
    for (int w : barrier_waiters_) make_runnable(w);
    barrier_waiters_.clear();
    return;
  }
  barrier_waiters_.push_back(current_);
  while (barrier_gen_ == gen) block("barrier");
}

void VirtualWorldState::fence_on_fiber() {
  // The virtual data plane has real transit time, so a fence here means
  // full quiescence: no message waiting to enter the network, none in
  // flight. Delayed messages are WAITED OUT in virtual time instead of
  // force-flushed, so stats.flushed stays 0 on this backend.
  while (pending_inject_ > 0 || engine_->active_flows() > 0) {
    fence_waiters_.push_back(current_);
    block("fence");
  }
}

void VirtualWorldState::backoff_on_fiber(std::chrono::microseconds pause) {
  const std::uint64_t deadline =
      now_us_ +
      static_cast<std::uint64_t>(std::max<std::int64_t>(0, pause.count()));
  if (deadline <= now_us_) {
    // Zero-length pause: plain yield (go to the back of the run queue).
    make_runnable(current_);
    yield_to_scheduler();
    DSHUF_CHECK(!aborted_, "world aborted while in backoff");
    return;
  }
  while (now_us_ < deadline) block_until(deadline, "backoff");
}

// ---- the event loop ----

bool VirtualWorldState::step_time() {
  const double tf = engine_->next_finish_s();
  const bool have_flow = std::isfinite(tf);
  std::uint64_t flow_us = 0;
  if (have_flow) {
    flow_us = static_cast<std::uint64_t>(std::ceil(std::max(0.0, tf) * 1e6));
    // Coarse event quantum: deliveries round UP to the next tick, so one
    // advance_to (and, in the engine's lazy mode, one refill) covers the
    // whole tick's completions.
    const std::uint64_t q = opts_.event_quantum_us;
    if (q > 1) flow_us = (flow_us + q - 1) / q * q;
    flow_us += engine_origin_us_;
  }
  const bool have_event = !events_.empty();
  if (!have_flow && !have_event) return false;

  std::uint64_t t;
  if (have_flow && (!have_event || flow_us <= events_.front().due_us)) {
    t = flow_us;
  } else {
    t = events_.front().due_us;
  }
  now_us_ = std::max(now_us_, t);
  vclock_.set_us(now_us_);

  // Advance the network to the (µs-quantised) new now and deliver what
  // finished. When the step was chosen FOR a flow completion, make sure
  // the rounded target doesn't land a hair before the engine's own
  // prediction — that would retire nothing and loop forever.
  double target_s =
      static_cast<double>(now_us_ - engine_origin_us_) * 1e-6;
  if (have_flow && flow_us <= now_us_) target_s = std::max(target_s, tf);
  finished_scratch_.clear();
  engine_->advance_to(target_s, finished_scratch_);
  for (auto& [id, fin_s] : finished_scratch_) {
    (void)fin_s;
    FlowMsg& fm = flow_msgs_[id];
    deliver(fm.dest, std::move(fm.msg), fm.fault_counted);
  }

  // Fire everything due: messages enter the network, timers wake fibers.
  while (!events_.empty() && events_.front().due_us <= now_us_) {
    std::pop_heap(events_.begin(), events_.end());
    Event ev = std::move(events_.back());
    events_.pop_back();
    if (ev.kind == EventKind::kInject) {
      --pending_inject_;
      start_flow(ev.src, ev.dest, ev.fault_counted, std::move(ev.msg));
    } else {
      make_runnable(ev.fiber);
    }
  }
  return true;
}

void VirtualWorldState::check_drained() {
  DSHUF_CHECK(pending_inject_ == 0 && engine_->active_flows() == 0,
              "virtual world finished with traffic still in flight");
  for (int r = 0; r < size_; ++r) {
    VMailbox& mb = mailboxes_[static_cast<std::size_t>(r)];
    DSHUF_CHECK(mb.arrived.empty(),
                "rank " << r << " finished with " << mb.arrived.size()
                        << " unreceived message(s)");
    DSHUF_CHECK(mb.parked.empty(),
                "rank " << r << " finished with " << mb.parked.size()
                        << " unmatched irecv(s)");
  }
}

void VirtualWorldState::run(
    const std::function<void(comm::Communicator&)>& body) {
  DSHUF_CHECK(!running_, "VirtualWorld::run is not reentrant");
  running_ = true;
  aborted_ = false;
  body_ = &body;
  run_start_us_ = now_us_;
  for (auto& per_rank : attempts_) per_rank.clear();

  engine_ = std::make_unique<FlowEngine>(link_caps_);
  engine_->set_lazy_rebalance(opts_.event_quantum_us > 1);
  engine_origin_us_ = now_us_;
  flow_msgs_.clear();
  flows_admitted_ = 0;
  events_.clear();
  event_seq_ = 0;
  pending_inject_ = 0;
  barrier_count_ = 0;
  barrier_waiters_.clear();
  fence_waiters_.clear();
  const std::uint64_t switches_before = switches_;

  // Rank code's spans/histograms must read virtual time for the duration.
  vclock_.set_us(now_us_);
  obs::Clock* prev_clock = obs::set_obs_clock(&vclock_);
  sched_log_ctx_ = log_context_state();
  sched_track_ = obs::Tracer::thread_track();

  fibers_.clear();
  fibers_.resize(static_cast<std::size_t>(size_));
  run_queue_.clear();
  for (int r = 0; r < size_; ++r) {
    Fiber& f = fibers_[static_cast<std::size_t>(r)];
    f.rank = r;
    f.stack_size = opts_.fiber_stack_bytes;
    f.stack = std::make_unique<char[]>(f.stack_size);
    DSHUF_CHECK(getcontext(&f.ctx) == 0, "getcontext failed");
    f.ctx.uc_stack.ss_sp = f.stack.get();
    f.ctx.uc_stack.ss_size = f.stack_size;
    f.ctx.uc_link = nullptr;  // fibers exit via an explicit final yield
    makecontext(&f.ctx, reinterpret_cast<void (*)()>(dshuf_fiber_trampoline),
                0);
    f.trace_track = r;
    f.runnable = true;
    run_queue_.push_back(r);
  }
  VirtualWorldState* prev_world = g_running_world;
  g_running_world = this;

  std::exception_ptr loop_error;
  try {
    for (;;) {
      while (!run_queue_.empty()) {
        const int fi = run_queue_.front();
        run_queue_.pop_front();
        Fiber& f = fibers_[static_cast<std::size_t>(fi)];
        f.runnable = false;
        if (f.done) continue;
        resume(fi);
      }
      bool all_done = true;
      for (const Fiber& f : fibers_) {
        if (!f.done) {
          all_done = false;
          break;
        }
      }
      if (all_done) break;
      if (!fence_waiters_.empty() && pending_inject_ == 0 &&
          engine_->active_flows() == 0) {
        for (int w : fence_waiters_) make_runnable(w);
        fence_waiters_.clear();
        continue;
      }
      if (!step_time()) {
        std::ostringstream blocked;
        for (const Fiber& f : fibers_) {
          if (f.done) continue;
          blocked << " r" << f.rank << ":"
                  << (f.blocked_reason ? f.blocked_reason : "?");
        }
        DSHUF_CHECK(false, "virtual world deadlock — no runnable fiber, no "
                           "pending event, no active flow; blocked:"
                               << blocked.str());
      }
    }
    // All ranks returned; run any still-ticking traffic to quiescence so
    // leftovers surface in mailboxes (and fail check_drained loudly, the
    // way undrained sends do on the threaded backend).
    while (pending_inject_ > 0 || engine_->active_flows() > 0) {
      DSHUF_CHECK(step_time(), "undelivered traffic cannot make progress");
    }
  } catch (...) {
    loop_error = std::current_exception();
  }

  g_running_world = prev_world;
  obs::set_obs_clock(prev_clock);
  restore_log_context(sched_log_ctx_);
  obs::Tracer::set_thread_track(sched_track_);
  running_ = false;
  body_ = nullptr;
  last_run_stats_ = VirtualWorld::RunStats{
      now_us_ - run_start_us_, switches_ - switches_before, flows_admitted_,
      engine_->refill_work()};

  if (loop_error) {
    fibers_.clear();
    std::rethrow_exception(loop_error);
  }
  for (Fiber& f : fibers_) {
    if (f.error) {
      std::exception_ptr e = f.error;
      fibers_.clear();
      std::rethrow_exception(e);
    }
  }
  fibers_.clear();
  check_drained();
}

}  // namespace detail

VirtualWorld::VirtualWorld(int num_ranks, VirtualWorldOptions opts)
    : state_(std::make_unique<detail::VirtualWorldState>(num_ranks, opts)) {}

VirtualWorld::~VirtualWorld() = default;

int VirtualWorld::size() const { return state_->size(); }

void VirtualWorld::run(const std::function<void(comm::Communicator&)>& body) {
  state_->run(body);
}

void VirtualWorld::set_fault_plan(const comm::FaultPlan& plan) {
  state_->set_fault_plan(plan);
}

void VirtualWorld::clear_fault_plan() { state_->clear_fault_plan(); }

comm::FaultStats VirtualWorld::fault_stats() const {
  return state_->fault_stats();
}

std::uint64_t VirtualWorld::now_us() const { return state_->now_us(); }

VirtualWorld::RunStats VirtualWorld::last_run_stats() const {
  return state_->last_run_stats();
}

}  // namespace dshuf::netsim
