// Incremental max-min-fair flow engine.
//
// The original simulate_flows recomputed EVERY flow's rate from scratch at
// every arrival and completion: progressive filling over all links, then a
// linear scan to find the next event — O(F) work per event, O(F^2) per
// epoch. Fine at M=64; at M=4096 a coalesced exchange epoch injects
// hundreds of thousands of flows and the recompute-everything loop is what
// made paper-scale simulation unaffordable.
//
// This engine keeps the same fluid model (max-min fairness via progressive
// filling, identical tolerances — the differential suite holds it against
// the reference implementation) but does event-driven, SCOPED work:
//
//   * Arrivals and completions mark only the links they touch dirty.
//   * A refill settles and re-fills only the CONNECTED COMPONENT of flows
//     reachable from dirty links through shared links. Flows outside the
//     component provably keep their max-min rates (they share no
//     constraint with anything that changed), so their predicted finish
//     times stay valid.
//   * Per-link active-flow sets are bucketed (lazily compacted vectors),
//     so membership updates are O(1) amortised.
//   * Predicted completions live in a lazily-invalidated heap keyed by
//     (finish time, admission seq); a rate change bumps the flow's
//     generation and orphans the stale entry instead of rebalancing.
//   * Same-timestamp events batch: all arrivals at time t dirty links
//     first, then one refill covers them.
//
// Flows that touch no link (self-sends, zero-byte control messages) are
// the caller's business — the engine prices wire occupancy only.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace dshuf::netsim {

class FlowEngine {
 public:
  using FlowId = std::uint64_t;
  static constexpr FlowId kInvalidFlow = ~FlowId{0};

  /// `link_caps_bps[l]` is link l's capacity. Links are whatever the
  /// caller says they are — NICs, group uplinks, a fabric pool.
  explicit FlowEngine(std::vector<double> link_caps_bps);

  /// Admit a flow of `bytes` over `links` (indices into the cap table,
  /// each traversed link constrains the flow) starting at the engine's
  /// current time. Rates rebalance lazily at the next query.
  FlowId add_flow(double bytes, const std::vector<int>& links);

  /// Current simulation time.
  [[nodiscard]] double now_s() const { return now_s_; }

  /// Earliest predicted completion among active flows (triggers a refill
  /// of any dirty component first); +inf when no flow is active.
  double next_finish_s();

  /// Advance to `t`, retiring every flow that completes at or before it —
  /// appended to `finished` as (id, completion time) in deterministic
  /// (time, admission) order. `t` may not rewind. Completions the caller
  /// never asked about don't get skipped: retiring a batch rebalances the
  /// survivors at the batch time before the clock moves past it.
  void advance_to(double t,
                  std::vector<std::pair<FlowId, double>>& finished);

  [[nodiscard]] std::size_t active_flows() const { return live_; }

  /// Total refill work (flows settled+filled, summed over refills) — the
  /// scaling diagnostic BENCH_scale reports as the incremental advantage.
  [[nodiscard]] std::uint64_t refill_work() const { return refill_work_; }

  /// Lazy rebalancing: advance_to retires EVERY completion in the window
  /// with one terminal refill instead of rebalancing survivors at each
  /// distinct batch time. Survivors integrate their (stale, never faster)
  /// rates across the window, so completions are exact-or-pessimistic by
  /// at most the window length. The virtual backend enables this when its
  /// event quantum exceeds 1 us — at 4096 ranks the per-batch refills are
  /// the dominant cost and the quantum bounds the error. Default off:
  /// exact per-batch rebalancing, the mode the differential suite pins.
  void set_lazy_rebalance(bool on) { lazy_ = on; }

 private:
  struct FlowRec {
    std::vector<int> links;
    double remaining = 0;      // bytes left at last_settle_s
    double rate = 0;           // current max-min rate
    double last_settle_s = 0;  // when `remaining` was last materialised
    std::uint32_t gen = 0;     // bumped on every rate change / retirement
    bool live = false;
    bool fixed = false;  // refill scratch
    bool in_component = false;
    bool has_prediction = false;  // a live heap entry exists for gen
  };

  struct HeapEntry {
    double finish_s;
    std::uint64_t seq;  // admission order tiebreak — determinism
    FlowId id;
    std::uint32_t gen;
    bool operator<(const HeapEntry& o) const {
      // std::push_heap keeps the LARGEST on top; invert for earliest.
      return finish_s != o.finish_s ? finish_s > o.finish_s : seq > o.seq;
    }
  };

  struct LinkRec {
    double cap_bps = 0;
    std::vector<FlowId> flows;  // bucketed: may hold retired ids
    std::size_t live = 0;       // live flow count (compaction trigger)
    // Refill scratch, valid only inside refill():
    double headroom = 0;
    int unfixed = 0;
    bool in_component = false;
    bool dirty = false;
  };

  void mark_dirty(const std::vector<int>& links);
  void refill_dirty();
  void settle(FlowRec& f);
  void push_prediction(FlowId id);
  void retire(FlowId id);

  std::vector<LinkRec> links_;
  std::vector<FlowRec> flows_;
  std::vector<FlowId> free_slots_;
  std::vector<int> dirty_links_;
  // Refill scratch (capacity retained across refills).
  std::vector<int> comp_links_;
  std::vector<FlowId> comp_flows_;
  std::vector<FlowId> bfs_stack_;
  std::vector<double> old_rates_;     // parallel to comp_flows_
  std::vector<FlowId> unfixed_flows_; // filling worklist (order-stable)
  std::vector<int> unfixed_links_;    // links with unfixed > 0
  std::vector<HeapEntry> heap_;
  double now_s_ = 0;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<std::uint64_t> flow_seq_;
  std::uint64_t refill_work_ = 0;
  bool lazy_ = false;
};

}  // namespace dshuf::netsim
