#include "netsim/flowsim.hpp"

#include "netsim/flow_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace dshuf::netsim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTimeEps = 1e-12;

struct ActiveFlow {
  std::size_t index;  // into the input vector
  int src;
  int dst;
  double remaining;
  bool uses_fabric;
  double rate = 0;
  bool fixed = false;
};

/// Max-min fair rates via progressive filling over the three link
/// classes. Mutates `flows` in place.
void assign_rates(std::vector<ActiveFlow>& flows, const LinkCaps& caps,
                  int ranks) {
  if (flows.empty()) return;
  for (auto& f : flows) {
    f.rate = 0;
    f.fixed = false;
  }
  // Link bookkeeping: [0, ranks) = out NICs, [ranks, 2*ranks) = in NICs,
  // index 2*ranks = fabric (if constrained).
  const bool fabric = caps.fabric_bps > 0;
  const std::size_t nlinks = 2 * static_cast<std::size_t>(ranks) +
                             (fabric ? 1 : 0);
  std::vector<double> headroom(nlinks);
  std::vector<int> unfixed(nlinks, 0);
  auto links_of = [&](const ActiveFlow& f, auto&& fn) {
    fn(static_cast<std::size_t>(f.src));
    fn(static_cast<std::size_t>(ranks + f.dst));
    if (fabric && f.uses_fabric) {
      fn(2 * static_cast<std::size_t>(ranks));
    }
  };
  for (std::size_t l = 0; l < nlinks; ++l) {
    headroom[l] = l < static_cast<std::size_t>(ranks) ? caps.nic_out_bps
                  : l < 2 * static_cast<std::size_t>(ranks)
                      ? caps.nic_in_bps
                      : caps.fabric_bps;
  }
  for (auto& f : flows) {
    links_of(f, [&](std::size_t l) { ++unfixed[l]; });
  }

  std::size_t remaining_flows = flows.size();
  while (remaining_flows > 0) {
    // Find the bottleneck link: smallest fair share among links with
    // unfixed flows.
    double best_share = kInf;
    for (std::size_t l = 0; l < nlinks; ++l) {
      if (unfixed[l] > 0) {
        best_share = std::min(best_share, headroom[l] / unfixed[l]);
      }
    }
    DSHUF_CHECK(best_share < kInf, "no bottleneck found with flows left");
    // Fix every unfixed flow that traverses a link achieving that share.
    bool fixed_any = false;
    for (auto& f : flows) {
      if (f.fixed) continue;
      bool at_bottleneck = false;
      links_of(f, [&](std::size_t l) {
        if (unfixed[l] > 0 &&
            headroom[l] / unfixed[l] <= best_share * (1 + 1e-12)) {
          at_bottleneck = true;
        }
      });
      if (!at_bottleneck) continue;
      f.fixed = true;
      f.rate = best_share;
      fixed_any = true;
      --remaining_flows;
      links_of(f, [&](std::size_t l) {
        headroom[l] -= best_share;
        --unfixed[l];
      });
    }
    DSHUF_CHECK(fixed_any, "progressive filling made no progress");
  }
}

}  // namespace

SimOutcome simulate_flows_reference(const std::vector<Flow>& flows,
                                    const LinkCaps& caps, int ranks) {
  DSHUF_CHECK_GT(ranks, 0, "need at least one rank");
  DSHUF_CHECK_GT(caps.nic_out_bps, 0.0, "NIC egress must be positive");
  DSHUF_CHECK_GT(caps.nic_in_bps, 0.0, "NIC ingress must be positive");

  SimOutcome out;
  out.flow_finish_s.assign(flows.size(), 0.0);
  out.rank_finish_s.assign(static_cast<std::size_t>(ranks), 0.0);

  // Effective start includes the per-message latency; self-flows finish
  // right there.
  struct Pending {
    std::size_t index;
    double ready_s;
  };
  std::vector<Pending> pending;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& f = flows[i];
    DSHUF_CHECK(f.src >= 0 && f.src < ranks, "flow src out of range");
    DSHUF_CHECK(f.dst >= 0 && f.dst < ranks, "flow dst out of range");
    DSHUF_CHECK_GE(f.bytes, 0.0, "flow bytes must be non-negative");
    const double ready = f.start_s + caps.per_message_latency_s;
    if (f.src == f.dst || f.bytes == 0.0) {
      out.flow_finish_s[i] = ready;
    } else {
      pending.push_back(Pending{i, ready});
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) {
              return a.ready_s < b.ready_s;
            });

  std::vector<ActiveFlow> active;
  std::size_t next_pending = 0;
  double now = 0.0;
  if (!pending.empty()) now = pending.front().ready_s;

  while (!active.empty() || next_pending < pending.size()) {
    // Admit flows that have become ready.
    while (next_pending < pending.size() &&
           pending[next_pending].ready_s <= now + kTimeEps) {
      const auto& f = flows[pending[next_pending].index];
      active.push_back(ActiveFlow{pending[next_pending].index, f.src, f.dst,
                                  f.bytes, f.uses_fabric});
      ++next_pending;
    }
    if (active.empty()) {
      now = pending[next_pending].ready_s;
      continue;
    }
    assign_rates(active, caps, ranks);

    // Time to the earliest completion or next admission.
    double dt = kInf;
    for (const auto& f : active) {
      if (f.rate > 0) dt = std::min(dt, f.remaining / f.rate);
    }
    if (next_pending < pending.size()) {
      dt = std::min(dt, pending[next_pending].ready_s - now);
    }
    DSHUF_CHECK(dt < kInf, "flow simulation stalled");
    dt = std::max(dt, 0.0);

    now += dt;
    for (auto& f : active) f.remaining -= f.rate * dt;
    // Retire completed flows.
    for (auto it = active.begin(); it != active.end();) {
      if (it->remaining <= it->rate * kTimeEps + 1e-9) {
        out.flow_finish_s[it->index] = now;
        it = active.erase(it);
      } else {
        ++it;
      }
    }
  }

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const double t = out.flow_finish_s[i];
    out.makespan_s = std::max(out.makespan_s, t);
    out.rank_finish_s[static_cast<std::size_t>(flows[i].src)] =
        std::max(out.rank_finish_s[static_cast<std::size_t>(flows[i].src)], t);
    out.rank_finish_s[static_cast<std::size_t>(flows[i].dst)] =
        std::max(out.rank_finish_s[static_cast<std::size_t>(flows[i].dst)], t);
  }
  return out;
}

SimOutcome simulate_flows(const std::vector<Flow>& flows,
                          const LinkCaps& caps, int ranks) {
  DSHUF_CHECK_GT(ranks, 0, "need at least one rank");
  DSHUF_CHECK_GT(caps.nic_out_bps, 0.0, "NIC egress must be positive");
  DSHUF_CHECK_GT(caps.nic_in_bps, 0.0, "NIC ingress must be positive");

  SimOutcome out;
  out.flow_finish_s.assign(flows.size(), 0.0);
  out.rank_finish_s.assign(static_cast<std::size_t>(ranks), 0.0);

  // Same link classes as the reference: [0, ranks) out NICs, [ranks,
  // 2*ranks) in NICs, 2*ranks the fabric pool when constrained
  // (fabric_bps == 0 means unconstrained — no fabric link exists and
  // uses_fabric flows see only their NICs).
  const bool fabric = caps.fabric_bps > 0;
  std::vector<double> link_caps(2 * static_cast<std::size_t>(ranks) +
                                (fabric ? 1 : 0));
  for (int r = 0; r < ranks; ++r) {
    link_caps[static_cast<std::size_t>(r)] = caps.nic_out_bps;
    link_caps[static_cast<std::size_t>(ranks + r)] = caps.nic_in_bps;
  }
  if (fabric) link_caps[2 * static_cast<std::size_t>(ranks)] = caps.fabric_bps;

  struct Pending {
    std::size_t index;
    double ready_s;
  };
  std::vector<Pending> pending;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& f = flows[i];
    DSHUF_CHECK(f.src >= 0 && f.src < ranks, "flow src out of range");
    DSHUF_CHECK(f.dst >= 0 && f.dst < ranks, "flow dst out of range");
    DSHUF_CHECK_GE(f.bytes, 0.0, "flow bytes must be non-negative");
    const double ready = f.start_s + caps.per_message_latency_s;
    if (f.src == f.dst || f.bytes == 0.0) {
      // Latency-only path: self-flows and empty messages never occupy a
      // link (the engine refuses linkless flows for the same reason).
      out.flow_finish_s[i] = ready;
    } else {
      pending.push_back(Pending{i, ready});
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) {
              return a.ready_s != b.ready_s ? a.ready_s < b.ready_s
                                            : a.index < b.index;
            });

  FlowEngine engine(std::move(link_caps));
  std::vector<std::size_t> index_of;  // engine FlowId -> input index
  std::vector<std::pair<FlowEngine::FlowId, double>> finished;
  std::vector<int> path;
  std::size_t next_pending = 0;
  while (next_pending < pending.size() || engine.active_flows() > 0) {
    const double t_admit = next_pending < pending.size()
                               ? pending[next_pending].ready_s
                               : kInf;
    const double t_finish = engine.next_finish_s();
    DSHUF_CHECK(std::min(t_admit, t_finish) < kInf,
                "flow simulation stalled");
    finished.clear();
    if (t_admit <= t_finish) {
      engine.advance_to(std::max(t_admit, engine.now_s()), finished);
      // Admit the whole same-instant batch: one refill covers them all.
      while (next_pending < pending.size() &&
             pending[next_pending].ready_s <= engine.now_s() + kTimeEps) {
        const auto& f = flows[pending[next_pending].index];
        path.clear();
        path.push_back(f.src);
        path.push_back(ranks + f.dst);
        if (fabric && f.uses_fabric) path.push_back(2 * ranks);
        const FlowEngine::FlowId id = engine.add_flow(f.bytes, path);
        if (index_of.size() <= id) index_of.resize(id + 1);
        index_of[id] = pending[next_pending].index;
        ++next_pending;
      }
    } else {
      engine.advance_to(t_finish, finished);
    }
    for (const auto& [id, at_s] : finished) {
      out.flow_finish_s[index_of[id]] = at_s;
    }
  }

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const double t = out.flow_finish_s[i];
    out.makespan_s = std::max(out.makespan_s, t);
    out.rank_finish_s[static_cast<std::size_t>(flows[i].src)] =
        std::max(out.rank_finish_s[static_cast<std::size_t>(flows[i].src)], t);
    out.rank_finish_s[static_cast<std::size_t>(flows[i].dst)] =
        std::max(out.rank_finish_s[static_cast<std::size_t>(flows[i].dst)], t);
  }
  return out;
}

std::vector<Flow> flows_from_plan(const shuffle::ExchangePlan& plan,
                                  double bytes_per_sample) {
  std::vector<Flow> flows;
  flows.reserve(plan.rounds() * static_cast<std::size_t>(plan.workers()));
  for (std::size_t i = 0; i < plan.rounds(); ++i) {
    for (int r = 0; r < plan.workers(); ++r) {
      flows.push_back(Flow{r, plan.dest(i, r), bytes_per_sample, 0.0, true});
    }
  }
  return flows;
}

std::vector<Flow> flows_from_hierarchical_plan(
    const shuffle::HierarchicalExchangePlan& plan, double bytes_per_sample) {
  std::vector<Flow> flows;
  flows.reserve(plan.rounds() * static_cast<std::size_t>(plan.workers()));
  for (std::size_t i = 0; i < plan.rounds(); ++i) {
    for (int r = 0; r < plan.workers(); ++r) {
      const int d = plan.dest(i, r);
      flows.push_back(Flow{r, d, bytes_per_sample, 0.0,
                           plan.group_of(r) != plan.group_of(d)});
    }
  }
  return flows;
}

std::vector<Flow> flows_naive(int ranks, std::size_t quota,
                              double bytes_per_sample, std::uint64_t seed) {
  std::vector<Flow> flows;
  flows.reserve(quota * static_cast<std::size_t>(ranks));
  Rng base(seed);
  for (int r = 0; r < ranks; ++r) {
    Rng rng = base.fork(0xF10, static_cast<std::uint64_t>(r));
    for (std::size_t i = 0; i < quota; ++i) {
      flows.push_back(Flow{
          r, static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(
                 ranks))),
          bytes_per_sample, 0.0, true});
    }
  }
  return flows;
}

double ring_allreduce_time(int ranks, double bytes, const LinkCaps& caps) {
  DSHUF_CHECK_GT(ranks, 0, "need at least one rank");
  if (ranks == 1) return 0.0;
  const double m = ranks;
  const double volume = 2.0 * (m - 1.0) / m * bytes;
  const double bw = std::min(caps.nic_out_bps, caps.nic_in_bps);
  return volume / bw +
         2.0 * (m - 1.0) * caps.per_message_latency_s;
}

}  // namespace dshuf::netsim
