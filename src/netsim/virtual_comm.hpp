// Event-driven virtual-rank comm backend.
//
// The threaded comm::World tops out around a few hundred ranks — one OS
// thread per rank thrashes the scheduler long before Fugaku-scale M. This
// backend runs THOUSANDS of virtual ranks as cooperatively-scheduled
// fibers (ucontext) multiplexed onto one OS thread by a single
// discrete-event loop:
//
//   * Each rank's body runs unmodified against the comm::Communicator
//     interface — the same mpi_exchange epoch logic, coalesced wire,
//     robust DATA/ACK protocol, and fault handling as on the threaded
//     backend. Collectives come from the shared base-class implementation,
//     so collective results are bit-identical across backends by
//     construction.
//   * Time is VIRTUAL: Communicator::now_us() reads the event loop's
//     clock, and every blocking primitive (recv, wait_for, backoff,
//     barrier, fence) suspends the fiber until an event advances it. A
//     4096-rank epoch simulates in wall-clock seconds because idle
//     virtual time costs nothing.
//   * Message timing comes from the incremental max-min-fair FlowEngine:
//     each point-to-point payload becomes a flow over its NIC (and, under
//     a topology, group uplink/downlink) links; the delivery event fires
//     at the flow's simulated completion. The obs VirtualClock is
//     installed for the duration of run(), so spans and histograms
//     recorded by rank code carry virtual timestamps.
//   * Faults replay the SAME pure oracle as the threaded injector
//     (comm::FaultPlan::decide keyed by per-link attempt counters), so a
//     fault schedule reproduces identically on either backend.
//
// Topology model (when Options.topology is set): ranks live in G groups
// of S. NICs run at intra_bw_bps; each group has one uplink and one
// downlink at inter_bw_bps that every inter-group flow crosses; with
// leader_aggregation the flow additionally traverses the source and
// destination group leaders' NICs (store-and-forward through the leader,
// priced as one fluid flow over the whole path).
//
// Determinism: one OS thread, a FIFO run queue, and a (time, seq)-ordered
// event heap — two runs with the same inputs interleave identically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "comm/comm.hpp"
#include "comm/fault.hpp"
#include "netsim/flowsim.hpp"
#include "shuffle/topology.hpp"

namespace dshuf::netsim {

namespace detail {
class VirtualWorldState;
}  // namespace detail

struct VirtualWorldOptions {
  /// Flat link model: NIC speeds, optional shared fabric pool, per-message
  /// latency. With `topology` set, NICs take intra_bw_bps and the
  /// uplinks/downlinks inter_bw_bps instead of these NIC fields (the
  /// fabric pool and latency still apply).
  LinkCaps caps{};
  std::optional<shuffle::Topology> topology;
  /// Stack bytes per fiber (heap-allocated). The exchange needs a few KiB;
  /// the default leaves generous headroom for logging and spans.
  std::size_t fiber_stack_bytes = 256 * 1024;
  /// Completion-event granularity, virtual microseconds. 1 (the default)
  /// delivers each flow at its exact (us-rounded) finish with per-batch
  /// max-min rebalancing. Larger values round delivery times UP to the
  /// quantum and switch the engine to lazy rebalancing: one refill per
  /// quantum tick instead of per distinct completion time, trading a
  /// bounded pessimism (each delivery late by < quantum) for an
  /// order-of-magnitude cut in event-loop work. BENCH_scale runs its
  /// 4096-rank arms at 16 us; correctness suites keep 1.
  std::uint64_t event_quantum_us = 1;
};

/// Drop-in World replacement running ranks as fibers over simulated time.
class VirtualWorld {
 public:
  explicit VirtualWorld(int num_ranks, VirtualWorldOptions opts = {});
  ~VirtualWorld();
  VirtualWorld(const VirtualWorld&) = delete;
  VirtualWorld& operator=(const VirtualWorld&) = delete;

  [[nodiscard]] int size() const;

  /// Run `body` once per rank, multiplexed on the calling thread. Virtual
  /// time continues from the previous run. Rethrows the first failing
  /// rank's exception (rank order); mailboxes must be drained between
  /// runs (checked, mirroring the threaded World).
  void run(const std::function<void(comm::Communicator&)>& body);

  /// Same fault-plan surface as comm::World. The oracle and per-link
  /// attempt counters match the threaded injector, so one seed produces
  /// one schedule on both backends.
  void set_fault_plan(const comm::FaultPlan& plan);
  void clear_fault_plan();
  [[nodiscard]] comm::FaultStats fault_stats() const;

  /// Virtual clock (microseconds since construction).
  [[nodiscard]] std::uint64_t now_us() const;

  struct RunStats {
    std::uint64_t virtual_makespan_us = 0;  ///< virtual time run() spanned
    std::uint64_t context_switches = 0;     ///< fiber resumes
    std::uint64_t flows = 0;                ///< messages priced by the engine
    std::uint64_t refill_work = 0;          ///< FlowEngine::refill_work delta
  };
  [[nodiscard]] RunStats last_run_stats() const;

 private:
  std::unique_ptr<detail::VirtualWorldState> state_;
};

}  // namespace dshuf::netsim
