// Flow-level network simulator.
//
// The analytic perf model (dshuf::perf) asserts how the exchange behaves
// under contention; this module CHECKS such claims with a discrete-event,
// max-min-fair flow simulation — the standard abstraction for
// coarse-grained datacentre network studies. Each message is a flow
// (src, dst, bytes, start). Three link classes constrain rates:
//   * each rank's NIC egress (injection bandwidth),
//   * each rank's NIC ingress (ejection bandwidth),
//   * one shared fabric pool (bisection) used by flows flagged as
//     crossing it (intra-node/-group flows bypass it).
// Rates follow max-min fairness via progressive filling, recomputed at
// every flow arrival/completion. Per-message latency delays a flow's
// start. Self-flows (src == dst) complete after latency without touching
// any link.
//
// Uses: exchange makespans for Algorithm-1 vs naive vs hierarchical plans
// (bench_ext_netsim), and cross-validation of the analytic congestion
// factor.
#pragma once

#include <cstdint>
#include <vector>

#include "shuffle/exchange_plan.hpp"
#include "shuffle/hierarchical.hpp"

namespace dshuf::netsim {

struct LinkCaps {
  double nic_out_bps = 1e9;
  double nic_in_bps = 1e9;
  /// Aggregate fabric (bisection) capacity shared by fabric-crossing
  /// flows; 0 = unconstrained fabric.
  double fabric_bps = 0;
  /// Fixed startup latency per flow (software + wire), seconds.
  double per_message_latency_s = 0;
};

struct Flow {
  int src = 0;
  int dst = 0;
  double bytes = 0;
  double start_s = 0;
  bool uses_fabric = true;
};

struct SimOutcome {
  /// Completion time of each flow (input order).
  std::vector<double> flow_finish_s;
  /// Last completion per rank, over flows it sends or receives.
  std::vector<double> rank_finish_s;
  /// max over flows (the exchange makespan).
  double makespan_s = 0;
};

/// Simulate all flows to completion. `ranks` bounds src/dst. Runs on the
/// incremental event-driven FlowEngine (see netsim/flow_engine.hpp):
/// arrivals and completions re-fill only the touched contention component
/// instead of recomputing every rate, which is what makes 4096-rank
/// epochs affordable.
SimOutcome simulate_flows(const std::vector<Flow>& flows,
                          const LinkCaps& caps, int ranks);

/// The original recompute-everything progressive-filling loop, O(F) work
/// per event. Kept as the semantic oracle: the differential suite holds
/// simulate_flows to it across random flow sets, and anyone changing the
/// engine's tolerances must keep the two in agreement.
SimOutcome simulate_flows_reference(const std::vector<Flow>& flows,
                                    const LinkCaps& caps, int ranks);

/// Flows for one epoch of the balanced Algorithm-1 exchange: one message
/// per (round, rank), all injected at t = 0.
std::vector<Flow> flows_from_plan(const shuffle::ExchangePlan& plan,
                                  double bytes_per_sample);

/// Flows for the hierarchical plan: intra-group messages bypass the
/// fabric (they ride node-local links).
std::vector<Flow> flows_from_hierarchical_plan(
    const shuffle::HierarchicalExchangePlan& plan, double bytes_per_sample);

/// Flows for the naive uncontrolled exchange: `quota` messages per rank
/// to independently random destinations (seeded).
std::vector<Flow> flows_naive(int ranks, std::size_t quota,
                              double bytes_per_sample, std::uint64_t seed);

/// Closed-form check value: time for a ring allreduce of `bytes` over
/// `ranks` NICs (2 * (M-1)/M * bytes per NIC direction).
double ring_allreduce_time(int ranks, double bytes, const LinkCaps& caps);

}  // namespace dshuf::netsim
