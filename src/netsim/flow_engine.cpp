#include "netsim/flow_engine.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace dshuf::netsim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

FlowEngine::FlowEngine(std::vector<double> link_caps_bps) {
  links_.resize(link_caps_bps.size());
  for (std::size_t l = 0; l < link_caps_bps.size(); ++l) {
    DSHUF_CHECK_GT(link_caps_bps[l], 0.0, "link capacity must be positive");
    links_[l].cap_bps = link_caps_bps[l];
  }
}

FlowEngine::FlowId FlowEngine::add_flow(double bytes,
                                        const std::vector<int>& links) {
  DSHUF_CHECK_GE(bytes, 0.0, "flow bytes must be non-negative");
  DSHUF_CHECK(!links.empty(),
              "linkless flows never contend; price them caller-side");
  FlowId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = flows_.size();
    flows_.emplace_back();
    flow_seq_.push_back(0);
  }
  FlowRec& f = flows_[id];
  f.links = links;
  f.remaining = bytes;
  f.rate = 0;
  f.last_settle_s = now_s_;
  f.live = true;
  f.has_prediction = false;
  ++f.gen;
  flow_seq_[id] = next_seq_++;
  for (int l : links) {
    DSHUF_CHECK(l >= 0 && static_cast<std::size_t>(l) < links_.size(),
                "flow references an unknown link");
    links_[static_cast<std::size_t>(l)].flows.push_back(id);
    ++links_[static_cast<std::size_t>(l)].live;
  }
  ++live_;
  mark_dirty(links);
  return id;
}

void FlowEngine::mark_dirty(const std::vector<int>& links) {
  for (int l : links) {
    LinkRec& rec = links_[static_cast<std::size_t>(l)];
    if (!rec.dirty) {
      rec.dirty = true;
      dirty_links_.push_back(l);
    }
  }
}

void FlowEngine::settle(FlowRec& f) {
  const double dt = now_s_ - f.last_settle_s;
  if (dt > 0 && f.rate > 0) {
    f.remaining = std::max(0.0, f.remaining - f.rate * dt);
  }
  f.last_settle_s = now_s_;
}

void FlowEngine::push_prediction(FlowId id) {
  FlowRec& f = flows_[id];
  if (f.rate <= 0) return;  // a stall surfaces as next_finish_s() == inf
  const double finish =
      f.remaining <= 0 ? now_s_ : now_s_ + f.remaining / f.rate;
  heap_.push_back(HeapEntry{finish, flow_seq_[id], id, f.gen});
  std::push_heap(heap_.begin(), heap_.end());
  f.has_prediction = true;
}

void FlowEngine::refill_dirty() {
  if (dirty_links_.empty()) return;

  // Component discovery: everything reachable from the dirty links through
  // shared-link contention. Flows outside keep their rates — max-min is
  // separable across link-disjoint components.
  comp_links_.clear();
  comp_flows_.clear();
  for (int l : dirty_links_) {
    LinkRec& rec = links_[static_cast<std::size_t>(l)];
    rec.dirty = false;
    if (!rec.in_component) {
      rec.in_component = true;
      comp_links_.push_back(l);
    }
  }
  dirty_links_.clear();
  for (std::size_t i = 0; i < comp_links_.size(); ++i) {
    LinkRec& rec = links_[static_cast<std::size_t>(comp_links_[i])];
    for (FlowId id : rec.flows) {
      FlowRec& f = flows_[id];
      if (!f.live || f.in_component) continue;
      f.in_component = true;
      comp_flows_.push_back(id);
      for (int l2 : f.links) {
        LinkRec& rec2 = links_[static_cast<std::size_t>(l2)];
        if (!rec2.in_component) {
          rec2.in_component = true;
          comp_links_.push_back(l2);
        }
      }
    }
  }

  // Settle the component to `now` (rates were constant since each flow's
  // last settle — rates only ever change inside a refill), remember the
  // old rates, and reset the filling scratch.
  old_rates_.clear();
  for (FlowId id : comp_flows_) {
    FlowRec& f = flows_[id];
    settle(f);
    old_rates_.push_back(f.rate);
    f.rate = 0;
    f.fixed = false;
  }
  for (int l : comp_links_) {
    LinkRec& rec = links_[static_cast<std::size_t>(l)];
    rec.headroom = rec.cap_bps;
    rec.unfixed = 0;
  }
  for (FlowId id : comp_flows_) {
    for (int l : flows_[id].links) {
      ++links_[static_cast<std::size_t>(l)].unfixed;
    }
  }
  refill_work_ += comp_flows_.size();

  // Progressive filling, component-scoped. Same bottleneck selection, tie
  // tolerance, and within-level fixing ORDER as the reference
  // implementation — but over compacting worklists, so each level costs
  // the surviving (unfixed) flows and links instead of the whole
  // component. The compaction is order-stable: dropping fixed entries
  // in place preserves the reference's flow iteration order, which
  // matters when a level's fixes pull another link under the tolerance
  // mid-scan.
  unfixed_flows_.assign(comp_flows_.begin(), comp_flows_.end());
  unfixed_links_.assign(comp_links_.begin(), comp_links_.end());
  while (!unfixed_flows_.empty()) {
    double best_share = kInf;
    std::size_t lw = 0;
    for (int l : unfixed_links_) {
      const LinkRec& rec = links_[static_cast<std::size_t>(l)];
      if (rec.unfixed > 0) {
        unfixed_links_[lw++] = l;
        best_share = std::min(best_share, rec.headroom / rec.unfixed);
      }
    }
    unfixed_links_.resize(lw);
    DSHUF_CHECK(best_share < kInf, "no bottleneck found with flows left");
    bool fixed_any = false;
    std::size_t fw = 0;
    for (FlowId id : unfixed_flows_) {
      FlowRec& f = flows_[id];
      bool at_bottleneck = false;
      for (int l : f.links) {
        const LinkRec& rec = links_[static_cast<std::size_t>(l)];
        if (rec.unfixed > 0 &&
            rec.headroom / rec.unfixed <= best_share * (1 + 1e-12)) {
          at_bottleneck = true;
          break;
        }
      }
      if (!at_bottleneck) {
        unfixed_flows_[fw++] = id;
        continue;
      }
      f.fixed = true;
      f.rate = best_share;
      fixed_any = true;
      for (int l : f.links) {
        LinkRec& rec = links_[static_cast<std::size_t>(l)];
        rec.headroom -= best_share;
        --rec.unfixed;
      }
    }
    unfixed_flows_.resize(fw);
    DSHUF_CHECK(fixed_any, "progressive filling made no progress");
  }

  for (std::size_t i = 0; i < comp_flows_.size(); ++i) {
    const FlowId id = comp_flows_[i];
    FlowRec& f = flows_[id];
    f.in_component = false;
    // A flow whose rate came back (numerically) identical keeps its live
    // heap entry: with the same rate and the settle above, the predicted
    // finish is unchanged, so re-pushing would only grow the heap with
    // duplicates — at 4096 ranks that churn dominated memory and time.
    const double old = old_rates_[i];
    if (f.has_prediction && f.rate > 0 && old > 0 &&
        std::abs(f.rate - old) <= 1e-12 * f.rate) {
      continue;
    }
    ++f.gen;  // orphan any stale heap prediction
    f.has_prediction = false;
    push_prediction(id);
  }
  for (int l : comp_links_) {
    links_[static_cast<std::size_t>(l)].in_component = false;
  }
}

double FlowEngine::next_finish_s() {
  refill_dirty();
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const FlowRec& f = flows_[top.id];
    if (f.live && f.gen == top.gen) return top.finish_s;
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
  return kInf;
}

void FlowEngine::retire(FlowId id) {
  FlowRec& f = flows_[id];
  f.live = false;
  f.has_prediction = false;
  ++f.gen;
  --live_;
  mark_dirty(f.links);
  for (int l : f.links) {
    LinkRec& rec = links_[static_cast<std::size_t>(l)];
    --rec.live;
    // Bucketed membership: retired ids linger until the bucket is mostly
    // dead, then one sweep compacts it — O(1) amortised.
    if (rec.flows.size() > 2 * rec.live + 8) {
      rec.flows.erase(
          std::remove_if(rec.flows.begin(), rec.flows.end(),
                         [&](FlowId fid) { return !flows_[fid].live; }),
          rec.flows.end());
    }
  }
  free_slots_.push_back(id);
}

void FlowEngine::advance_to(
    double t, std::vector<std::pair<FlowId, double>>& finished) {
  DSHUF_CHECK_GE(t, now_s_, "flow time cannot rewind");
  if (lazy_) {
    // Lazy mode: retire the whole window's completions against the rates
    // of the LAST refill, in deterministic (time, admission) order, and
    // leave the freed capacity dirty — the next query refills once for
    // the whole window. Survivors integrate a never-faster rate across
    // the window, so every completion is exact or pessimistic by at most
    // the window length (the virtual backend's event quantum).
    refill_dirty();
    while (!heap_.empty()) {
      const HeapEntry top = heap_.front();
      FlowRec& f = flows_[top.id];
      if (!f.live || f.gen != top.gen) {
        std::pop_heap(heap_.begin(), heap_.end());
        heap_.pop_back();
        continue;
      }
      if (top.finish_s > t) break;
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
      now_s_ = std::max(now_s_, top.finish_s);
      settle(f);
      retire(top.id);
      finished.emplace_back(top.id, top.finish_s);
    }
    now_s_ = std::max(now_s_, t);
    return;
  }
  while (true) {
    // Rates (and hence predictions) must be current at now_s_ before any
    // further time passes — settles integrate a constant rate.
    refill_dirty();
    while (!heap_.empty()) {
      const HeapEntry& top = heap_.front();
      const FlowRec& f = flows_[top.id];
      if (f.live && f.gen == top.gen) break;
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
    }
    if (heap_.empty() || heap_.front().finish_s > t) break;

    // Retire the whole batch of simultaneous completions, then loop: the
    // freed capacity rebalances survivors AT the batch time, so their
    // remaining bytes integrate the higher rate from here on — exactly
    // what the recompute-at-every-event reference does.
    const double batch_t = heap_.front().finish_s;
    now_s_ = std::max(now_s_, batch_t);
    while (!heap_.empty()) {
      const HeapEntry top = heap_.front();
      FlowRec& f = flows_[top.id];
      if (!f.live || f.gen != top.gen) {
        std::pop_heap(heap_.begin(), heap_.end());
        heap_.pop_back();
        continue;
      }
      if (top.finish_s > batch_t) break;
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
      settle(f);
      retire(top.id);
      finished.emplace_back(top.id, batch_t);
    }
  }
  now_s_ = std::max(now_s_, t);
}

}  // namespace dshuf::netsim
