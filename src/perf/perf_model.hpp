// Analytic epoch-time model.
//
// Reproduces the SHAPE of the paper's performance results (Figures 7b, 9,
// 10) on top of the io::SystemProfile tier constants:
//
//   epoch = max-over-workers(IO) + FW+BW + visible EXCHANGE + GE+WU
//
//   * IO        — local tiers stream the shard with tight variance; the
//                 PFS under M concurrent readers gets a congestion-only
//                 straggler multiplier exp(sigma * max(z, 0)), calibrated
//                 so 512 readers reproduce the paper's 11.9 s ... 142 s
//                 spread around a 19.6 s mean (DenseNet161).
//   * EXCHANGE  — personalised all-to-all of Q * shard bytes per worker;
//                 per-worker throughput min(injection, c * bisection / M)
//                 with a congestion penalty growing with M. Overlap with
//                 compute (Fig. 4) hides up to (I-1)/I of the epoch's
//                 FW+BW budget; with few iterations per epoch the hiding
//                 collapses — the paper's >= 1,024-worker degradation.
//   * GE+WU     — allreduce of the model bytes, plus the synchronous-SGD
//                 penalty that I/O stragglers impose on the collective
//                 (workers "enter the collective late"): a calibrated
//                 fraction of (max IO - mean IO).
//
// All randomness is a pure function of (seed, worker), so results are
// reproducible and the mean/max statistics are deterministic.
#pragma once

#include <cstdint>
#include <string>

#include "io/storage.hpp"
#include "shuffle/types.hpp"

namespace dshuf::perf {

/// Per-model compute/size constants (calibrated against Fig. 10).
struct ComputeProfile {
  std::string model_name;
  /// Forward+backward seconds per sample per worker.
  double fwbw_per_sample_s = 0;
  /// Decode/augment seconds per sample (part of the measured "I/O" time).
  double decode_per_sample_s = 0;
  /// Parameter bytes (gradient allreduce volume).
  double model_bytes = 0;
  /// On-disk bytes per training sample.
  double sample_bytes = 0;
};

ComputeProfile resnet50_profile();
ComputeProfile densenet161_profile();
ComputeProfile deepcam_profile();

struct WorkloadShape {
  std::size_t dataset_samples = 0;
  std::size_t workers = 1;
  std::size_t local_batch = 32;
};

struct EpochBreakdown {
  double io_s = 0;        // mean across workers (the paper's reported IO)
  double io_min_s = 0;
  double io_max_s = 0;    // slowest worker (straggler)
  double exchange_s = 0;  // visible (non-overlapped) exchange time
  double exchange_raw_s = 0;  // before overlap hiding
  double fwbw_s = 0;
  double gewu_s = 0;      // gradient exchange + weight update
  std::size_t iterations = 0;

  [[nodiscard]] double total() const {
    return io_s + exchange_s + fwbw_s + gewu_s;
  }
};

class EpochModel {
 public:
  EpochModel(io::SystemProfile system, ComputeProfile compute,
             std::uint64_t seed = 2022);

  /// Average per-epoch time breakdown for the given strategy. `q` is the
  /// exchange fraction (ignored for global/local).
  [[nodiscard]] EpochBreakdown epoch(const WorkloadShape& w,
                                     shuffle::Strategy strategy,
                                     double q) const;

  /// Hierarchical-exchange variant (the paper's Section V-F proposal):
  /// `intra_fraction` of the exchanged samples stay within a group of
  /// `workers / groups` ranks (near-zero congestion), the rest crosses
  /// groups and pays congestion at GROUP granularity instead of rank
  /// granularity. Everything else matches epoch(kPartial, q).
  [[nodiscard]] EpochBreakdown epoch_partial_hierarchical(
      const WorkloadShape& w, double q, int groups,
      double intra_fraction = 0.5) const;

  /// Lower bound for PFS-based global shuffling used by Fig. 7(b)'s red
  /// line: the whole dataset streamed once per epoch at the PFS backend's
  /// theoretical aggregate bandwidth (no contention, no metadata).
  [[nodiscard]] double pfs_global_lower_bound(
      const WorkloadShape& w) const;

  [[nodiscard]] const io::SystemProfile& system() const { return system_; }
  [[nodiscard]] const ComputeProfile& compute() const { return compute_; }

 private:
  struct IoStats {
    double mean = 0;
    double min = 0;
    double max = 0;
  };
  [[nodiscard]] IoStats io_time(const WorkloadShape& w,
                                shuffle::Strategy strategy, double q) const;
  [[nodiscard]] double alltoall_bw_per_worker(std::size_t workers) const;

  io::SystemProfile system_;
  ComputeProfile compute_;
  std::uint64_t seed_;
};

}  // namespace dshuf::perf
