#include "perf/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace dshuf::perf {

namespace {

constexpr double kMiB = 1024.0 * 1024.0;

// Fraction of the I/O straggler spread (max - mean) that shows up as
// gradient-exchange waiting (synchronous SGD workers entering the
// collective late). Calibrated against Fig. 10's ~70 s GE under global
// shuffling and Fig. 9's ~5x epoch-time gap at 128 workers.
constexpr double kStragglerCollectiveCoupling = 0.55;

// All-to-all congestion: penalty factor 1 + (M / kCongestionKnee)^kExp
// applied to the exchange time. Reproduces partial-0.1's degradation at
// >= 1,024 workers (Fig. 9) while staying negligible below ~512.
constexpr double kCongestionKnee = 768.0;
constexpr double kCongestionExp = 1.6;

// Per-sample exchange handling cost, seconds: non-blocking send/recv
// software overhead plus the save/remove of the sample on local storage
// (the PLS.ImageFolder hooks). This — not wire bandwidth — dominates the
// measured EXCHANGE time in Fig. 10, which grows linearly with Q.
constexpr double kExchangeHandlingPerSample = 10e-3;

// Fraction of the exchange the Fig. 4 pipeline actually hides behind
// FW+BW. Modest: sample save/remove contends with the training process
// (GIL / storage), so most of the handling cost stays visible — which is
// why Fig. 10's epoch time still grows ~1.37x at high Q despite overlap.
constexpr double kOverlapShare = 0.15;

// Base allreduce latency per step (software + sync), seconds.
constexpr double kAllreducePerStepBase = 0.8e-3;

}  // namespace

ComputeProfile resnet50_profile() {
  ComputeProfile p;
  p.model_name = "ResNet50";
  p.fwbw_per_sample_s = 6.0e-3;   // per worker on a V100-class device
  p.decode_per_sample_s = 2.6e-3; // JPEG decode + augmentation share
  p.model_bytes = 25.6e6 * 4;     // 25.6 M float32 parameters
  p.sample_bytes = 117e3;         // 140 GB / 1.2 M samples
  return p;
}

ComputeProfile densenet161_profile() {
  ComputeProfile p;
  p.model_name = "DenseNet161";
  p.fwbw_per_sample_s = 12.5e-3;
  p.decode_per_sample_s = 3.3e-3;  // Fig. 10: local-shuffle I/O ~8 s/epoch
  p.model_bytes = 28.7e6 * 4;
  p.sample_bytes = 117e3;
  return p;
}

ComputeProfile deepcam_profile() {
  ComputeProfile p;
  p.model_name = "DeepCAM";
  p.fwbw_per_sample_s = 180e-3;    // large segmentation samples
  p.decode_per_sample_s = 40e-3;
  p.model_bytes = 56e6 * 4;
  p.sample_bytes = 8.2e12 / 122e3;  // ~67 MB per sample
  return p;
}

EpochModel::EpochModel(io::SystemProfile system, ComputeProfile compute,
                       std::uint64_t seed)
    : system_(std::move(system)), compute_(std::move(compute)), seed_(seed) {}

EpochModel::IoStats EpochModel::io_time(const WorkloadShape& w,
                                        shuffle::Strategy strategy,
                                        double q) const {
  const double shard =
      static_cast<double>(w.dataset_samples) / static_cast<double>(w.workers);
  const double shard_bytes = shard * compute_.sample_bytes;
  const double decode = shard * compute_.decode_per_sample_s;

  const bool from_pfs = strategy == shuffle::Strategy::kGlobal;
  const io::StorageTier& tier = from_pfs ? system_.pfs : system_.node_local;

  // Per-worker streaming bandwidth under contention.
  double bw = tier.bandwidth_bps;
  if (tier.shared_backend_bps > 0) {
    bw = std::min(bw, tier.shared_backend_bps /
                          static_cast<double>(w.workers));
  }
  // Partial shuffling reads (1-Q) from disk; received samples are staged in
  // memory by the exchange and written back asynchronously, so only the
  // retained fraction hits the read path — but every sample still pays
  // decode.
  const bool exchanges = strategy == shuffle::Strategy::kPartial ||
                         strategy == shuffle::Strategy::kUncontrolled;
  const double read_fraction = exchanges ? (1.0 - q) : 1.0;
  const double base = read_fraction * shard_bytes / bw +
                      shard * tier.per_file_latency_s + decode;

  // Straggler multiplier: congestion only ever slows a reader down, so the
  // multiplier is exp(sigma * max(z, 0)) — min stays at the base time and
  // the tail reproduces the paper's 142 s worst reader at 512 workers.
  IoStats stats;
  stats.min = base;
  stats.max = base;
  double sum = 0;
  Rng rng(seed_);
  for (std::size_t r = 0; r < w.workers; ++r) {
    Rng wr = rng.fork(0x10, r, from_pfs ? 1 : 0);
    const double z = wr.normal();
    const double mult = std::exp(tier.straggler_sigma * std::max(0.0, z));
    const double t = base * mult;
    sum += t;
    stats.min = std::min(stats.min, t);
    stats.max = std::max(stats.max, t);
  }
  stats.mean = sum / static_cast<double>(w.workers);
  return stats;
}

double EpochModel::alltoall_bw_per_worker(std::size_t workers) const {
  // Personalised all-to-all: bounded by injection for small M, by the
  // per-worker bisection share at scale.
  const double m = static_cast<double>(workers);
  const double bisection_share =
      workers > 1 ? 4.0 * system_.network_bisection_bps / (m * m) * m / 4.0
                  : system_.network_injection_bps;
  // (per-worker share of bisection is ~bisection / M for the random
  // pairwise pattern; the expression above simplifies to that.)
  return std::min(system_.network_injection_bps, bisection_share);
}

EpochBreakdown EpochModel::epoch(const WorkloadShape& w,
                                 shuffle::Strategy strategy, double q) const {
  DSHUF_CHECK_GT(w.workers, 0U, "workers must be positive");
  DSHUF_CHECK_GT(w.local_batch, 0U, "batch must be positive");
  DSHUF_CHECK_GE(w.dataset_samples, w.workers,
                 "need at least one sample per worker");
  const bool exchanges = strategy == shuffle::Strategy::kPartial ||
                         strategy == shuffle::Strategy::kUncontrolled;
  if (!exchanges) q = 0.0;

  const double shard =
      static_cast<double>(w.dataset_samples) / static_cast<double>(w.workers);
  const auto iterations = static_cast<std::size_t>(
      std::max(1.0, std::floor(shard / static_cast<double>(w.local_batch))));

  EpochBreakdown b;
  b.iterations = iterations;
  b.fwbw_s = shard * compute_.fwbw_per_sample_s;

  const IoStats io = io_time(w, strategy, q);
  b.io_s = io.mean;
  b.io_min_s = io.min;
  b.io_max_s = io.max;

  // EXCHANGE (partial only): per-sample handling (software + save/remove
  // hooks) plus the wire transfer, both inflated by all-to-all congestion
  // at scale; the Fig. 4 pipeline hides a modest share behind compute of
  // all but the last iteration.
  if (exchanges && q > 0.0 && w.workers > 1) {
    const double quota = q * shard;  // samples sent (== received on
                                     // average; uncontrolled is unbalanced)
    const double volume = quota * compute_.sample_bytes;
    const double bw = alltoall_bw_per_worker(w.workers);
    const double congestion =
        1.0 + std::pow(static_cast<double>(w.workers) / kCongestionKnee,
                       kCongestionExp);
    b.exchange_raw_s =
        (quota * kExchangeHandlingPerSample + volume / bw) * congestion;
    const double hidden_fraction =
        kOverlapShare * (static_cast<double>(iterations) - 1.0) /
        static_cast<double>(iterations);
    b.exchange_s = b.exchange_raw_s * (1.0 - hidden_fraction);
  }

  // GE+WU: per-step allreduce plus the straggler-entry penalty.
  const double allreduce_per_step =
      kAllreducePerStepBase +
      2.0 * compute_.model_bytes / system_.allreduce_bus_bps;
  b.gewu_s = static_cast<double>(iterations) * allreduce_per_step +
             kStragglerCollectiveCoupling * (io.max - io.mean);
  return b;
}

EpochBreakdown EpochModel::epoch_partial_hierarchical(
    const WorkloadShape& w, double q, int groups,
    double intra_fraction) const {
  DSHUF_CHECK_GT(groups, 0, "need at least one group");
  DSHUF_CHECK(intra_fraction >= 0.0 && intra_fraction <= 1.0,
              "intra fraction must be in [0, 1]");
  // Start from the flat partial breakdown, then recompute the exchange
  // with the split congestion profile.
  EpochBreakdown b = epoch(w, shuffle::Strategy::kPartial, q);
  if (q <= 0.0 || w.workers <= 1) return b;

  const double shard =
      static_cast<double>(w.dataset_samples) / static_cast<double>(w.workers);
  const double quota = q * shard;
  const double volume = quota * compute_.sample_bytes;
  const double bw = alltoall_bw_per_worker(w.workers);
  const double inter_congestion =
      1.0 + std::pow(static_cast<double>(groups) / kCongestionKnee,
                     kCongestionExp);
  // Intra-group traffic rides node-local links: no fabric congestion.
  const double effective_congestion =
      intra_fraction * 1.0 + (1.0 - intra_fraction) * inter_congestion;
  b.exchange_raw_s = (quota * kExchangeHandlingPerSample + volume / bw) *
                     effective_congestion;
  const double hidden_fraction =
      kOverlapShare * (static_cast<double>(b.iterations) - 1.0) /
      static_cast<double>(b.iterations);
  b.exchange_s = b.exchange_raw_s * (1.0 - hidden_fraction);
  return b;
}

double EpochModel::pfs_global_lower_bound(const WorkloadShape& w) const {
  const double dataset_bytes =
      static_cast<double>(w.dataset_samples) * compute_.sample_bytes;
  DSHUF_CHECK_GT(system_.pfs.shared_backend_bps, 0.0,
                 "PFS profile needs an aggregate bandwidth");
  return dataset_bytes / system_.pfs.shared_backend_bps;
}

}  // namespace dshuf::perf
