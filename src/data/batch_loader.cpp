#include "data/batch_loader.hpp"

#include "obs/clock.hpp"
#include "obs/metrics.hpp"

namespace dshuf::data {

BatchLoader::BatchLoader(const InMemoryDataset& dataset,
                         std::vector<SampleId> order, std::size_t batch_size,
                         std::size_t prefetch_depth)
    : dataset_(&dataset),
      order_(std::move(order)),
      batch_size_(batch_size),
      prefetch_depth_(std::max<std::size_t>(1, prefetch_depth)),
      num_batches_(batch_size == 0 ? 0 : order_.size() / batch_size) {
  DSHUF_CHECK_GT(batch_size, 0U, "batch size must be positive");
  producer_ = std::thread([this] { producer_loop(); });
}

BatchLoader::~BatchLoader() {
  {
    std::lock_guard<RankedMutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (producer_.joinable()) producer_.join();
}

void BatchLoader::producer_loop() {
  for (std::size_t b = 0; b < num_batches_; ++b) {
    // Assemble outside the lock — this is the work being overlapped.
    const std::uint64_t assemble_start = obs::obs_clock().now_us();
    const std::span<const SampleId> ids(order_.data() + b * batch_size_,
                                        batch_size_);
    Batch batch;
    batch.index = b;
    batch.features = dataset_->gather(ids);
    batch.labels = dataset_->gather_labels(ids);
    DSHUF_HISTOGRAM_US("data.batch_loader.assemble_us")
        .observe(obs::obs_clock().now_us() - assemble_start);

    std::unique_lock<RankedMutex> lk(mu_);
    cv_.wait(lk, [&] {
      return stop_ || queue_.size() < prefetch_depth_;
    });
    if (stop_) return;
    queue_.push_back(std::move(batch));
    ++produced_;
    DSHUF_GAUGE("data.batch_loader.queue_depth")
        .set(static_cast<std::int64_t>(queue_.size()));
    lk.unlock();
    cv_.notify_all();
  }
}

std::optional<BatchLoader::Batch> BatchLoader::next() {
  const std::uint64_t wait_start = obs::obs_clock().now_us();
  std::unique_lock<RankedMutex> lk(mu_);
  if (consumed_ >= num_batches_) return std::nullopt;
  cv_.wait(lk, [&] { return !queue_.empty(); });
  Batch batch = std::move(queue_.front());
  queue_.pop_front();
  ++consumed_;
  DSHUF_GAUGE("data.batch_loader.queue_depth")
      .set(static_cast<std::int64_t>(queue_.size()));
  lk.unlock();
  cv_.notify_all();
  DSHUF_HISTOGRAM_US("data.batch_loader.wait_us")
      .observe(obs::obs_clock().now_us() - wait_start);
  return batch;
}

}  // namespace dshuf::data
