#include "data/batch_loader.hpp"

#include <cstring>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"

namespace dshuf::data {

BatchLoader::BatchLoader(const InMemoryDataset& dataset,
                         std::vector<SampleId> order, std::size_t batch_size,
                         std::size_t prefetch_depth)
    : dataset_(&dataset),
      order_(std::move(order)),
      batch_size_(batch_size),
      prefetch_depth_(std::max<std::size_t>(1, prefetch_depth)),
      num_batches_(batch_size == 0 ? 0 : order_.size() / batch_size) {
  DSHUF_CHECK_GT(batch_size, 0U, "batch size must be positive");
  producer_ = std::thread([this] { producer_loop(); });
}

BatchLoader::BatchLoader(const SampleSource& source, std::size_t feature_dim,
                         std::vector<SampleId> order, std::size_t batch_size,
                         std::size_t prefetch_depth)
    : source_(&source),
      feature_dim_(feature_dim),
      order_(std::move(order)),
      batch_size_(batch_size),
      prefetch_depth_(std::max<std::size_t>(1, prefetch_depth)),
      num_batches_(batch_size == 0 ? 0 : order_.size() / batch_size) {
  DSHUF_CHECK_GT(batch_size, 0U, "batch size must be positive");
  DSHUF_CHECK_GT(feature_dim, 0U, "feature dim must be positive");
  producer_ = std::thread([this] { producer_loop(); });
}

BatchLoader::~BatchLoader() {
  {
    std::lock_guard<RankedMutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (producer_.joinable()) producer_.join();
}

BatchLoader::Batch BatchLoader::assemble(std::size_t b) const {
  const std::span<const SampleId> ids(order_.data() + b * batch_size_,
                                      batch_size_);
  Batch batch;
  batch.index = b;
  if (dataset_ != nullptr) {
    batch.features = dataset_->gather(ids);
    batch.labels = dataset_->gather_labels(ids);
    return batch;
  }
  // Store-backed: decode each serialized row (u32 label + floats — the
  // exchange wire format, mirroring io::deserialize_sample_into, which
  // dshuf_data cannot link without an io<->data cycle) straight into the
  // tensor row under the store's zero-copy span read.
  batch.features = Tensor({batch_size_, feature_dim_});
  batch.labels.resize(batch_size_);
  const std::size_t row_bytes =
      sizeof(std::uint32_t) + feature_dim_ * sizeof(float);
  for (std::size_t i = 0; i < batch_size_; ++i) {
    float* row = batch.features.data() + i * feature_dim_;
    std::uint32_t label = 0;
    source_->read(ids[i], [&](std::span<const std::byte> p) {
      DSHUF_CHECK_EQ(p.size(), row_bytes,
                     "sample " << ids[i] << " payload does not match row");
      std::memcpy(&label, p.data(), sizeof(label));
      std::memcpy(row, p.data() + sizeof(label),
                  feature_dim_ * sizeof(float));
    });
    batch.labels[i] = label;
  }
  return batch;
}

void BatchLoader::producer_loop() {
  for (std::size_t b = 0; b < num_batches_; ++b) {
    // Assemble outside the lock — this is the work being overlapped.
    const std::uint64_t assemble_start = obs::obs_clock().now_us();
    Batch batch = assemble(b);
    DSHUF_HISTOGRAM_US("data.batch_loader.assemble_us")
        .observe(obs::obs_clock().now_us() - assemble_start);

    std::unique_lock<RankedMutex> lk(mu_);
    cv_.wait(lk, [&] {
      return stop_ || queue_.size() < prefetch_depth_;
    });
    if (stop_) return;
    queue_.push_back(std::move(batch));
    ++produced_;
    DSHUF_GAUGE("data.batch_loader.queue_depth")
        .set(static_cast<std::int64_t>(queue_.size()));
    lk.unlock();
    cv_.notify_all();
  }
}

std::optional<BatchLoader::Batch> BatchLoader::next() {
  const std::uint64_t wait_start = obs::obs_clock().now_us();
  std::unique_lock<RankedMutex> lk(mu_);
  if (consumed_ >= num_batches_) return std::nullopt;
  cv_.wait(lk, [&] { return !queue_.empty(); });
  Batch batch = std::move(queue_.front());
  queue_.pop_front();
  ++consumed_;
  DSHUF_GAUGE("data.batch_loader.queue_depth")
      .set(static_cast<std::int64_t>(queue_.size()));
  lk.unlock();
  cv_.notify_all();
  DSHUF_HISTOGRAM_US("data.batch_loader.wait_us")
      .observe(obs::obs_clock().now_us() - wait_start);
  return batch;
}

}  // namespace dshuf::data
