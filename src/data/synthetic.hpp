// Synthetic dataset generators.
//
// Each paper dataset is replaced by a class-cluster Gaussian mixture whose
// knobs control what the shuffling experiments actually depend on:
//   * num_classes / samples_per_class — the (N, C) scale,
//   * cluster_separation vs within-class spread — task difficulty,
//   * manifold_warp — nonlinear structure so a linear model cannot win,
//   * label_noise — irreducible error ceiling.
// A two-tier taxonomy variant backs the ImageNet-21K -> 1K transfer
// experiment (Fig. 8): fine labels partition into coarse labels so that a
// representation pretrained on the fine task transfers to the coarse task.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace dshuf::data {

struct ClassClusterSpec {
  std::size_t num_classes = 10;
  std::size_t samples_per_class = 100;
  std::size_t feature_dim = 32;
  /// Distance scale between class centroids (relative to unit noise).
  double cluster_separation = 3.0;
  /// Per-dimension stddev of within-class noise.
  double within_class_spread = 1.0;
  /// Strength of the nonlinear warp applied to features (0 = linear task).
  double manifold_warp = 0.5;
  /// Probability a label is replaced by a uniformly random one.
  double label_noise = 0.0;
  std::uint64_t seed = 42;
};

/// Generate a dataset from the spec. Deterministic given the spec.
InMemoryDataset make_class_clusters(const ClassClusterSpec& spec);

/// Generate matched train/val sets: same class centroids (derived from
/// spec.seed), independent noise draws. `val_fraction` of the per-class
/// sample budget goes to validation.
TrainValSplit make_class_clusters_split(const ClassClusterSpec& spec,
                                        double val_fraction = 0.2);

/// Two-tier taxonomy dataset for the transfer experiment: `fine_classes`
/// fine labels grouped evenly into `coarse_classes` coarse labels; fine
/// centroids are perturbations of their coarse centroid, so the fine task's
/// representation is useful for the coarse task.
struct TaxonomySpec {
  std::size_t coarse_classes = 16;
  std::size_t fine_per_coarse = 8;
  std::size_t samples_per_fine = 64;
  std::size_t feature_dim = 48;
  double coarse_separation = 4.0;
  double fine_separation = 1.2;
  double within_class_spread = 1.0;
  double manifold_warp = 0.4;
  std::uint64_t seed = 7;
};

struct TaxonomyDatasets {
  /// Upstream task: labels are the fine classes.
  TrainValSplit upstream;
  /// Downstream task: same feature distribution, labels are coarse classes.
  TrainValSplit downstream;
  std::size_t fine_classes = 0;
  std::size_t coarse_classes = 0;
};

TaxonomyDatasets make_taxonomy(const TaxonomySpec& spec,
                               double val_fraction = 0.2);

/// Climate-proxy dataset for DeepCAM (Fig. 7): heavy class imbalance
/// ("background" dominates two rare event classes), moderate separability.
struct ClimateSpec {
  std::size_t num_samples = 4096;
  std::size_t feature_dim = 48;
  /// Fraction of samples in the dominant background class.
  double background_fraction = 0.75;
  double separation = 2.2;
  double manifold_warp = 0.6;
  std::uint64_t seed = 99;
};

TrainValSplit make_climate_proxy(const ClimateSpec& spec,
                                 double val_fraction = 0.2);

}  // namespace dshuf::data
