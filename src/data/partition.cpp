#include "data/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dshuf::data {

std::string to_string(PartitionScheme s) {
  switch (s) {
    case PartitionScheme::kContiguous:
      return "contiguous";
    case PartitionScheme::kClassSorted:
      return "class-sorted";
    case PartitionScheme::kStrided:
      return "strided";
    case PartitionScheme::kRandom:
      return "random";
  }
  return "?";
}

PartitionScheme parse_partition_scheme(const std::string& s) {
  if (s == "contiguous") return PartitionScheme::kContiguous;
  if (s == "class-sorted" || s == "class_sorted") {
    return PartitionScheme::kClassSorted;
  }
  if (s == "strided") return PartitionScheme::kStrided;
  if (s == "random") return PartitionScheme::kRandom;
  DSHUF_CHECK(false, "unknown partition scheme: " << s);
}

std::vector<std::vector<SampleId>> partition_dataset(
    const InMemoryDataset& dataset, std::size_t workers,
    PartitionScheme scheme, Rng& rng) {
  DSHUF_CHECK_GT(workers, 0U, "need at least one worker");
  const std::size_t n = dataset.size();
  DSHUF_CHECK_GE(n, workers, "need at least one sample per worker");

  std::vector<SampleId> order(n);
  std::iota(order.begin(), order.end(), 0U);
  switch (scheme) {
    case PartitionScheme::kContiguous:
      break;
    case PartitionScheme::kClassSorted:
      std::stable_sort(order.begin(), order.end(),
                       [&](SampleId a, SampleId b) {
                         return dataset.label(a) < dataset.label(b);
                       });
      break;
    case PartitionScheme::kStrided: {
      // Transpose: worker w takes ids w, w+M, w+2M, ... — build the order
      // so contiguous chunking below yields exactly that.
      std::vector<SampleId> strided;
      strided.reserve(n);
      for (std::size_t w = 0; w < workers; ++w) {
        for (std::size_t i = w; i < n; i += workers) {
          strided.push_back(static_cast<SampleId>(i));
        }
      }
      order = std::move(strided);
      break;
    }
    case PartitionScheme::kRandom:
      rng.shuffle(order);
      break;
  }

  // Contiguous chunks over `order`, sizes differing by at most one.
  std::vector<std::vector<SampleId>> shards(workers);
  const std::size_t base = n / workers;
  const std::size_t extra = n % workers;
  std::size_t pos = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t count = base + (w < extra ? 1 : 0);
    shards[w].assign(order.begin() + static_cast<std::ptrdiff_t>(pos),
                     order.begin() + static_cast<std::ptrdiff_t>(pos + count));
    pos += count;
  }
  DSHUF_CHECK_EQ(pos, n, "partition must cover the whole dataset");
  return shards;
}

namespace {

/// Marsaglia–Tsang gamma sampler (shape k > 0, scale 1). For k < 1 uses
/// the boost Gamma(k) = Gamma(k+1) * U^(1/k).
double sample_gamma(double k, Rng& rng) {
  if (k < 1.0) {
    const double u = std::max(1e-12, rng.uniform());
    return sample_gamma(k + 1.0, rng) * std::pow(u, 1.0 / k);
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = std::max(1e-12, rng.uniform());
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

}  // namespace

std::vector<std::vector<SampleId>> partition_dataset_dirichlet(
    const InMemoryDataset& dataset, std::size_t workers, double alpha,
    Rng& rng) {
  DSHUF_CHECK_GT(workers, 0U, "need at least one worker");
  DSHUF_CHECK_GT(alpha, 0.0, "Dirichlet concentration must be positive");
  const std::size_t n = dataset.size();
  DSHUF_CHECK_GE(n, workers, "need at least one sample per worker");
  const std::size_t C = dataset.num_classes();

  // Per-class sample pools, shuffled so assignment within a class is
  // random.
  std::vector<std::vector<SampleId>> pools(C);
  for (std::size_t i = 0; i < n; ++i) {
    pools[dataset.label(static_cast<SampleId>(i))].push_back(
        static_cast<SampleId>(i));
  }
  for (auto& pool : pools) rng.shuffle(pool);

  const std::size_t cap_base = n / workers;
  const std::size_t cap_extra = n % workers;
  auto cap_of = [&](std::size_t w) { return cap_base + (w < cap_extra); };

  std::vector<std::vector<SampleId>> shards(workers);
  std::vector<SampleId> overflow;
  for (std::size_t c = 0; c < C; ++c) {
    // Worker shares for this class ~ Dirichlet(alpha).
    std::vector<double> weights(workers);
    double total = 0.0;
    for (auto& wgt : weights) {
      wgt = sample_gamma(alpha, rng);
      total += wgt;
    }
    // Deal the class pool according to the weights, respecting per-worker
    // capacity; what does not fit goes to the overflow pool.
    std::size_t assigned = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      const auto want = static_cast<std::size_t>(
          weights[w] / total * static_cast<double>(pools[c].size()));
      for (std::size_t i = 0; i < want && assigned < pools[c].size(); ++i) {
        if (shards[w].size() < cap_of(w)) {
          shards[w].push_back(pools[c][assigned++]);
        } else {
          break;
        }
      }
    }
    while (assigned < pools[c].size()) {
      overflow.push_back(pools[c][assigned++]);
    }
  }
  // Round-robin the overflow into whatever capacity remains.
  std::size_t w = 0;
  for (SampleId id : overflow) {
    while (shards[w].size() >= cap_of(w)) {
      ++w;
      DSHUF_CHECK_LT(w, workers, "overflow exceeds total capacity");
    }
    shards[w].push_back(id);
  }
  return shards;
}

double partition_skew(const InMemoryDataset& dataset,
                      const std::vector<std::vector<SampleId>>& shards) {
  const std::size_t C = dataset.num_classes();
  const auto global_hist = dataset.class_histogram();
  const auto n = static_cast<double>(dataset.size());
  std::vector<double> global_p(C);
  for (std::size_t c = 0; c < C; ++c) {
    global_p[c] = static_cast<double>(global_hist[c]) / n;
  }

  double total_tv = 0.0;
  for (const auto& shard : shards) {
    std::vector<double> p(C, 0.0);
    for (auto id : shard) p[dataset.label(id)] += 1.0;
    const auto sz = static_cast<double>(shard.size());
    double tv = 0.0;
    for (std::size_t c = 0; c < C; ++c) {
      tv += std::abs(p[c] / std::max(1.0, sz) - global_p[c]);
    }
    total_tv += 0.5 * tv;
  }
  return shards.empty() ? 0.0 : total_tv / static_cast<double>(shards.size());
}

}  // namespace dshuf::data
