// In-memory dataset container.
//
// Samples are stored as one contiguous [N, D] feature matrix plus a label
// vector; shuffling machinery refers to samples by global SampleId (row
// index), so moving a "sample" between workers is moving an id — payload
// movement is modelled by dshuf::io / exercised for real by the file-backed
// shard store and the threaded exchange example.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace dshuf::data {

using SampleId = std::uint32_t;

class InMemoryDataset {
 public:
  InMemoryDataset() = default;

  /// features: [N, D]; labels: N entries < num_classes.
  InMemoryDataset(Tensor features, std::vector<std::uint32_t> labels,
                  std::size_t num_classes);

  [[nodiscard]] std::size_t size() const { return labels_.size(); }
  [[nodiscard]] std::size_t feature_dim() const {
    return features_.empty() ? 0 : features_.cols();
  }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }

  [[nodiscard]] const Tensor& features() const { return features_; }
  [[nodiscard]] const std::vector<std::uint32_t>& labels() const {
    return labels_;
  }
  [[nodiscard]] std::uint32_t label(SampleId id) const {
    DSHUF_CHECK_LT(id, labels_.size(), "sample id out of range");
    return labels_[id];
  }

  /// Gather rows `ids` into a [|ids|, D] batch tensor.
  [[nodiscard]] Tensor gather(std::span<const SampleId> ids) const;
  /// Labels for the given ids.
  [[nodiscard]] std::vector<std::uint32_t> gather_labels(
      std::span<const SampleId> ids) const;

  /// Allocation-free variants: the outputs are resized in place (capacity
  /// reused), so a training loop can keep one batch buffer per worker.
  void gather_into(std::span<const SampleId> ids, Tensor& out) const;
  void gather_labels_into(std::span<const SampleId> ids,
                          std::vector<std::uint32_t>& out) const;

  /// Nominal serialized size of one sample in bytes (features as float32 +
  /// label); used by the I/O and exchange volume models.
  [[nodiscard]] std::size_t bytes_per_sample() const {
    return feature_dim() * sizeof(float) + sizeof(std::uint32_t);
  }

  /// Per-class sample counts (diagnostics, skew measurement).
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

 private:
  Tensor features_;
  std::vector<std::uint32_t> labels_;
  std::size_t num_classes_ = 0;
};

/// A labelled train/validation pair drawn from the same distribution.
struct TrainValSplit {
  InMemoryDataset train;
  InMemoryDataset val;
};

}  // namespace dshuf::data
