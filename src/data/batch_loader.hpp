// Prefetching batch loader — the DataLoader piece of the paper's training
// stack. Assembles fixed-size batches ([b, D] tensor + labels) from a
// visit order on a background thread, keeping a small bounded queue ahead
// of the consumer so batch assembly overlaps with compute (the same
// pipelining idea the paper's Fig. 4 applies to the sample exchange).
// Drop-last semantics match the simulator / PyTorch defaults.
//
// Two sample sources are supported:
//   * an InMemoryDataset (rows gathered straight out of the feature
//     matrix), or
//   * a data::SampleSource — the worker's local payload store. Each
//     sample's serialized bytes (u32 label + feature_dim floats, the
//     exchange's wire format) are decoded DIRECTLY into the batch
//     tensor's row via the store's zero-copy span read: no per-sample
//     allocation, and on the mmap-backed store no intermediate copy.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "data/sample_source.hpp"
#include "util/ranked_mutex.hpp"

namespace dshuf::data {

class BatchLoader {
 public:
  struct Batch {
    std::size_t index = 0;  // batch number within the epoch
    Tensor features;        // [b, D]
    std::vector<std::uint32_t> labels;
  };

  /// `dataset` must outlive the loader. `prefetch_depth` bounds how many
  /// batches the producer may run ahead.
  BatchLoader(const InMemoryDataset& dataset, std::vector<SampleId> order,
              std::size_t batch_size, std::size_t prefetch_depth = 2);

  /// Store-backed loader: rows are read from `source` (which must outlive
  /// the loader and hold every id in `order`) and decoded from the
  /// serialized payload format into the batch tensor in place.
  BatchLoader(const SampleSource& source, std::size_t feature_dim,
              std::vector<SampleId> order, std::size_t batch_size,
              std::size_t prefetch_depth = 2);
  ~BatchLoader();
  BatchLoader(const BatchLoader&) = delete;
  BatchLoader& operator=(const BatchLoader&) = delete;

  /// Number of (full) batches this epoch.
  [[nodiscard]] std::size_t num_batches() const { return num_batches_; }

  /// Blocking: returns the next batch, or nullopt once the epoch is
  /// exhausted. Batches arrive strictly in order.
  std::optional<Batch> next();

 private:
  void producer_loop();
  [[nodiscard]] Batch assemble(std::size_t b) const;

  const InMemoryDataset* dataset_ = nullptr;
  const SampleSource* source_ = nullptr;  // store-backed mode when set
  std::size_t feature_dim_ = 0;           // row width in store-backed mode
  std::vector<SampleId> order_;
  std::size_t batch_size_;
  std::size_t prefetch_depth_;
  std::size_t num_batches_;

  RankedMutex mu_{LockRank::kBatchLoader, "data.batch_loader"};
  std::condition_variable_any cv_;
  std::deque<Batch> queue_;
  std::size_t produced_ = 0;
  std::size_t consumed_ = 0;
  bool stop_ = false;
  std::thread producer_;
};

}  // namespace dshuf::data
