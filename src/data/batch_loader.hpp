// Prefetching batch loader — the DataLoader piece of the paper's training
// stack. Assembles fixed-size batches ([b, D] tensor + labels) from a
// visit order on a background thread, keeping a small bounded queue ahead
// of the consumer so batch assembly overlaps with compute (the same
// pipelining idea the paper's Fig. 4 applies to the sample exchange).
// Drop-last semantics match the simulator / PyTorch defaults.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "util/ranked_mutex.hpp"

namespace dshuf::data {

class BatchLoader {
 public:
  struct Batch {
    std::size_t index = 0;  // batch number within the epoch
    Tensor features;        // [b, D]
    std::vector<std::uint32_t> labels;
  };

  /// `dataset` must outlive the loader. `prefetch_depth` bounds how many
  /// batches the producer may run ahead.
  BatchLoader(const InMemoryDataset& dataset, std::vector<SampleId> order,
              std::size_t batch_size, std::size_t prefetch_depth = 2);
  ~BatchLoader();
  BatchLoader(const BatchLoader&) = delete;
  BatchLoader& operator=(const BatchLoader&) = delete;

  /// Number of (full) batches this epoch.
  [[nodiscard]] std::size_t num_batches() const { return num_batches_; }

  /// Blocking: returns the next batch, or nullopt once the epoch is
  /// exhausted. Batches arrive strictly in order.
  std::optional<Batch> next();

 private:
  void producer_loop();

  const InMemoryDataset* dataset_;
  std::vector<SampleId> order_;
  std::size_t batch_size_;
  std::size_t prefetch_depth_;
  std::size_t num_batches_;

  RankedMutex mu_{LockRank::kBatchLoader, "data.batch_loader"};
  std::condition_variable_any cv_;
  std::deque<Batch> queue_;
  std::size_t produced_ = 0;
  std::size_t consumed_ = 0;
  bool stop_ = false;
  std::thread producer_;
};

}  // namespace dshuf::data
