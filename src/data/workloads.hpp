// Workload registry mirroring Table I of the paper.
//
// Each paper (model, dataset) pair maps to a laptop-scale proxy: a
// class-cluster dataset spec + an MLP spec + the training regime used by
// the accuracy experiments. Scale factors keep sample counts proportional
// to the paper's datasets while staying runnable on one core.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "nn/builder.hpp"

namespace dshuf::data {

struct TrainRegime {
  std::size_t epochs = 30;
  float base_lr = 0.05F;
  /// Reference global batch for linear LR scaling (Goyal et al.):
  /// lr = base_lr * global_batch / reference_batch.
  std::size_t reference_batch = 256;
  std::vector<double> milestones = {};  // epochs where lr *= 0.1
  double warmup_epochs = 2.0;
  float momentum = 0.9F;
  float weight_decay = 5e-4F;
  /// Apply LARS when the worker count exceeds this (paper: >512 for
  /// ResNet50, >256 for DenseNet); 0 = never.
  std::size_t lars_above_workers = 0;
  float lars_trust = 0.02F;
};

struct Workload {
  std::string name;           // registry key, e.g. "imagenet1k-resnet50"
  std::string paper_model;    // e.g. "ResNet50"
  std::string paper_dataset;  // e.g. "ImageNet-1K"
  std::string paper_samples;  // e.g. "1.2M"
  std::string paper_size;     // e.g. "~140 GB"
  ClassClusterSpec data;
  nn::MlpSpec model;
  TrainRegime regime;
};

/// All registered workloads (Table I rows, in paper order).
const std::vector<Workload>& workload_registry();

/// Lookup by name; throws CheckError with the list of valid names.
const Workload& find_workload(const std::string& name);

}  // namespace dshuf::data
