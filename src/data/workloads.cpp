#include "data/workloads.hpp"

#include <sstream>

#include "util/error.hpp"

namespace dshuf::data {

namespace {

std::vector<Workload> build_registry() {
  std::vector<Workload> reg;

  // Proxies keep the paper's class-count flavour and a samples-per-worker
  // range that reproduces each experiment's regime at laptop scale; the
  // benches pick worker counts so that N/M matches the paper's
  // samples-per-worker as closely as practical.

  {
    Workload w;
    w.name = "imagenet1k-resnet50";
    w.paper_model = "ResNet50";
    w.paper_dataset = "ImageNet-1K";
    w.paper_samples = "1.2M";
    w.paper_size = "~140 GB";
    w.data = ClassClusterSpec{.num_classes = 64,
                              .samples_per_class = 128,
                              .feature_dim = 32,
                              .cluster_separation = 2.6,
                              .within_class_spread = 1.0,
                              .manifold_warp = 0.5,
                              .label_noise = 0.02,
                              .seed = 1001};
    w.model = nn::MlpSpec{.input_dim = 32,
                          .hidden = {96, 64},
                          .num_classes = 64,
                          .norm = nn::NormKind::kBatchNorm};
    w.regime = TrainRegime{.epochs = 30,
                           .base_lr = 0.1F,
                           .reference_batch = 256,
                           .milestones = {15, 23},
                           .warmup_epochs = 2.0,
                           .momentum = 0.9F,
                           .weight_decay = 1e-4F,
                           .lars_above_workers = 512,
                           .lars_trust = 0.02F};
    reg.push_back(std::move(w));
  }

  {
    Workload w;
    w.name = "imagenet1k-densenet161";
    w.paper_model = "DenseNet161";
    w.paper_dataset = "ImageNet-1K";
    w.paper_samples = "1.2M";
    w.paper_size = "~140 GB";
    w.data = ClassClusterSpec{.num_classes = 64,
                              .samples_per_class = 128,
                              .feature_dim = 32,
                              .cluster_separation = 2.6,
                              .within_class_spread = 1.0,
                              .manifold_warp = 0.5,
                              .label_noise = 0.02,
                              .seed = 1002};
    w.model = nn::MlpSpec{.input_dim = 32,
                          .hidden = {96, 96, 64},
                          .num_classes = 64,
                          .norm = nn::NormKind::kBatchNorm};
    w.regime = TrainRegime{.epochs = 30,
                           .base_lr = 0.1F,
                           .reference_batch = 256,
                           .milestones = {15, 23},
                           .warmup_epochs = 2.0,
                           .momentum = 0.9F,
                           .weight_decay = 1e-4F,
                           .lars_above_workers = 256,
                           .lars_trust = 0.02F};
    reg.push_back(std::move(w));
  }

  {
    Workload w;
    w.name = "imagenet50-resnet50";
    w.paper_model = "ResNet50";
    w.paper_dataset = "ImageNet-50 (subset)";
    w.paper_samples = "~65K";
    w.paper_size = "~2 GB";
    // Fewer samples per class — at scale each worker holds a tiny,
    // class-skewed shard, the Fig. 5(e) pathology.
    w.data = ClassClusterSpec{.num_classes = 50,
                              .samples_per_class = 64,
                              .feature_dim = 32,
                              .cluster_separation = 2.4,
                              .within_class_spread = 1.0,
                              .manifold_warp = 0.6,
                              .label_noise = 0.02,
                              .seed = 1003};
    w.model = nn::MlpSpec{.input_dim = 32,
                          .hidden = {96, 64},
                          .num_classes = 50,
                          .norm = nn::NormKind::kBatchNorm};
    w.regime = TrainRegime{.epochs = 30,
                           .base_lr = 0.1F,
                           .reference_batch = 256,
                           .milestones = {15, 23},
                           .warmup_epochs = 2.0,
                           .momentum = 0.9F,
                           .weight_decay = 1e-4F};
    reg.push_back(std::move(w));
  }

  {
    Workload w;
    w.name = "cifar100-wrn28";
    w.paper_model = "WideResNet-28-10";
    w.paper_dataset = "CIFAR-100";
    w.paper_samples = "50K";
    w.paper_size = "~160 MB";
    w.data = ClassClusterSpec{.num_classes = 100,
                              .samples_per_class = 64,
                              .feature_dim = 32,
                              .cluster_separation = 2.8,
                              .within_class_spread = 1.0,
                              .manifold_warp = 0.5,
                              .label_noise = 0.02,
                              .seed = 1004};
    // "Wide": generous hidden width relative to the task.
    w.model = nn::MlpSpec{.input_dim = 32,
                          .hidden = {192, 128},
                          .num_classes = 100,
                          .norm = nn::NormKind::kBatchNorm};
    w.regime = TrainRegime{.epochs = 30,
                           .base_lr = 0.1F,
                           .reference_batch = 128,
                           .milestones = {18, 25},
                           .warmup_epochs = 1.0,
                           .momentum = 0.9F,
                           .weight_decay = 5e-4F};
    reg.push_back(std::move(w));
  }

  {
    Workload w;
    w.name = "cifar100-inception";
    w.paper_model = "Inception-v4";
    w.paper_dataset = "CIFAR-100";
    w.paper_samples = "50K";
    w.paper_size = "~160 MB";
    w.data = ClassClusterSpec{.num_classes = 100,
                              .samples_per_class = 64,
                              .feature_dim = 32,
                              .cluster_separation = 2.8,
                              .within_class_spread = 1.0,
                              .manifold_warp = 0.5,
                              .label_noise = 0.02,
                              .seed = 1004};  // same data as wrn28 row
    // Narrow & deep: many BatchNorms over few channels — the
    // batch-statistics-sensitive architecture of Fig. 5(f).
    w.model = nn::MlpSpec{.input_dim = 32,
                          .hidden = {48, 48, 48, 48},
                          .num_classes = 100,
                          .norm = nn::NormKind::kBatchNorm};
    w.regime = TrainRegime{.epochs = 30,
                           .base_lr = 0.1F,
                           .reference_batch = 128,
                           .milestones = {18, 25},
                           .warmup_epochs = 1.0,
                           .momentum = 0.9F,
                           .weight_decay = 5e-4F};
    reg.push_back(std::move(w));
  }

  {
    Workload w;
    w.name = "cars-resnet50";
    w.paper_model = "ResNet50 (pre-trained)";
    w.paper_dataset = "Stanford Cars";
    w.paper_samples = "8144";
    w.paper_size = "~934 MB";
    w.data = ClassClusterSpec{.num_classes = 49,
                              .samples_per_class = 32,
                              .feature_dim = 32,
                              .cluster_separation = 2.2,
                              .within_class_spread = 1.0,
                              .manifold_warp = 0.4,
                              .label_noise = 0.0,
                              .seed = 1005};
    w.model = nn::MlpSpec{.input_dim = 32,
                          .hidden = {96, 64},
                          .num_classes = 49,
                          .norm = nn::NormKind::kBatchNorm};
    w.regime = TrainRegime{.epochs = 24,
                           .base_lr = 0.02F,  // fine-tuning LR
                           .reference_batch = 128,
                           .milestones = {12, 18},
                           .warmup_epochs = 0.0,
                           .momentum = 0.9F,
                           .weight_decay = 1e-4F};
    reg.push_back(std::move(w));
  }

  {
    Workload w;
    w.name = "imagenet21k-resnet50";
    w.paper_model = "ResNet50";
    w.paper_dataset = "ImageNet-21K (subset)";
    w.paper_samples = "~9.3M";
    w.paper_size = "~1.1 TB";
    w.data = ClassClusterSpec{.num_classes = 128,
                              .samples_per_class = 96,
                              .feature_dim = 48,
                              .cluster_separation = 2.4,
                              .within_class_spread = 1.0,
                              .manifold_warp = 0.4,
                              .label_noise = 0.02,
                              .seed = 1006};
    w.model = nn::MlpSpec{.input_dim = 48,
                          .hidden = {128, 96},
                          .num_classes = 128,
                          .norm = nn::NormKind::kBatchNorm};
    w.regime = TrainRegime{.epochs = 24,
                           .base_lr = 0.1F,
                           .reference_batch = 256,
                           .milestones = {12, 18},
                           .warmup_epochs = 2.0,
                           .momentum = 0.9F,
                           .weight_decay = 1e-4F,
                           .lars_above_workers = 512,
                           .lars_trust = 0.02F};
    reg.push_back(std::move(w));
  }

  {
    Workload w;
    w.name = "deepcam";
    w.paper_model = "DeepCAM";
    w.paper_dataset = "DeepCAM";
    w.paper_samples = "~122K";
    w.paper_size = "~8.2 TB";
    // The accuracy bench uses make_climate_proxy (imbalanced 3-class); this
    // spec stands in for registry-level bookkeeping (sample counts, bytes).
    w.data = ClassClusterSpec{.num_classes = 3,
                              .samples_per_class = 1365,
                              .feature_dim = 48,
                              .cluster_separation = 2.2,
                              .within_class_spread = 1.0,
                              .manifold_warp = 0.6,
                              .label_noise = 0.0,
                              .seed = 1007};
    w.model = nn::MlpSpec{.input_dim = 48,
                          .hidden = {96, 96},
                          .num_classes = 3,
                          .norm = nn::NormKind::kBatchNorm};
    w.regime = TrainRegime{.epochs = 20,
                           .base_lr = 0.05F,
                           .reference_batch = 256,
                           .milestones = {12, 16},
                           .warmup_epochs = 1.0,
                           .momentum = 0.9F,
                           .weight_decay = 1e-4F};
    reg.push_back(std::move(w));
  }

  return reg;
}

}  // namespace

const std::vector<Workload>& workload_registry() {
  static const std::vector<Workload> registry = build_registry();
  return registry;
}

const Workload& find_workload(const std::string& name) {
  for (const auto& w : workload_registry()) {
    if (w.name == name) return w;
  }
  std::ostringstream names;
  for (const auto& w : workload_registry()) names << ' ' << w.name;
  DSHUF_CHECK(false, "unknown workload '" << name << "'; known:"
                                          << names.str());
}

}  // namespace dshuf::data
