#include "data/dataset.hpp"

namespace dshuf::data {

InMemoryDataset::InMemoryDataset(Tensor features,
                                 std::vector<std::uint32_t> labels,
                                 std::size_t num_classes)
    : features_(std::move(features)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  DSHUF_CHECK_EQ(features_.rank(), 2U, "features must be [N, D]");
  DSHUF_CHECK_EQ(features_.rows(), labels_.size(),
                 "feature rows must match label count");
  for (auto l : labels_) {
    DSHUF_CHECK_LT(l, num_classes_, "label out of class range");
  }
}

Tensor InMemoryDataset::gather(std::span<const SampleId> ids) const {
  Tensor out;
  gather_into(ids, out);
  return out;
}

std::vector<std::uint32_t> InMemoryDataset::gather_labels(
    std::span<const SampleId> ids) const {
  std::vector<std::uint32_t> out;
  gather_labels_into(ids, out);
  return out;
}

void InMemoryDataset::gather_into(std::span<const SampleId> ids,
                                  Tensor& out) const {
  const std::size_t D = feature_dim();
  out.resize2(ids.size(), D);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    DSHUF_CHECK_LT(ids[i], size(), "sample id out of range");
    const float* src = features_.data() + static_cast<std::size_t>(ids[i]) * D;
    std::copy(src, src + D, out.data() + i * D);
  }
}

void InMemoryDataset::gather_labels_into(
    std::span<const SampleId> ids, std::vector<std::uint32_t>& out) const {
  out.resize(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    DSHUF_CHECK_LT(ids[i], size(), "sample id out of range");
    out[i] = labels_[ids[i]];
  }
}

std::vector<std::size_t> InMemoryDataset::class_histogram() const {
  std::vector<std::size_t> hist(num_classes_, 0);
  for (auto l : labels_) ++hist[l];
  return hist;
}

}  // namespace dshuf::data
