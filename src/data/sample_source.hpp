// Payload-bearing sample source: the read half of a sample store.
//
// BatchLoader can assemble batches straight from serialized sample
// payloads (the bytes the PLS exchange moves) instead of an in-memory
// [N, D] matrix. This interface is the seam: io::SampleStore implements
// it over files or mmap'd segments, and the loader decodes each payload
// from the span the store hands it — for the mmap store that span points
// into the mapped segment, so batch assembly is zero-copy from page cache
// to batch tensor. Declared in data/ (not io/) so data does not depend on
// io; io already links data.
#pragma once

#include <cstddef>
#include <span>

#include "data/dataset.hpp"
#include "util/function_ref.hpp"

namespace dshuf::data {

class SampleSource {
 public:
  using ReadFn = FunctionRef<void(std::span<const std::byte>)>;

  virtual ~SampleSource() = default;

  /// Invoke `fn` with the serialized payload of `id`; throws if absent.
  /// The span is valid only for the duration of the call — implementations
  /// may hand out views into storage they later reclaim. Implementations
  /// MUST invoke `fn` without holding internal locks: callers written
  /// against this interface may reenter the source from the callback
  /// (e.g. the exchange deposit path saving into the same store).
  virtual void read(SampleId id, ReadFn fn) const = 0;

  /// Number of samples currently held.
  virtual std::size_t size() const = 0;

  [[nodiscard]] virtual bool contains(SampleId id) const = 0;
};

}  // namespace dshuf::data
