// Initial dataset partitioning across workers.
//
// The paper (Fig. 2) represents partitioning as a permutation of the
// dataset: worker ownership is determined by position in the permuted
// order. The partition scheme decides how benign local shuffling is:
//   * kClassSorted  — sort by label, then contiguous chunks. This is what a
//                     directory-ordered ImageNet copy gives and maximises
//                     per-worker class skew; the pathological case.
//   * kContiguous   — chunks in generation order (our generators emit
//                     class-grouped data, so this is skewed too).
//   * kStrided      — round-robin; each worker gets a near-iid slice.
//   * kRandom       — random permutation then contiguous chunks (the
//                     paper's default initial distribution: a shuffle).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace dshuf::data {

enum class PartitionScheme { kContiguous, kClassSorted, kStrided, kRandom };

std::string to_string(PartitionScheme s);
PartitionScheme parse_partition_scheme(const std::string& s);

/// Split sample ids [0, dataset.size()) into `workers` shards according to
/// the scheme. Shard sizes differ by at most one sample. The RNG is only
/// used by kRandom.
std::vector<std::vector<SampleId>> partition_dataset(
    const InMemoryDataset& dataset, std::size_t workers,
    PartitionScheme scheme, Rng& rng);

/// Dirichlet non-IID partitioning with tunable skew (the standard
/// federated-learning construction): for each class, worker shares are
/// drawn from Dirichlet(alpha). alpha -> infinity approaches iid shards;
/// alpha -> 0 approaches one-class-per-worker. Shard sizes are balanced to
/// within one sample (rounding surplus is redistributed round-robin).
/// Used to reproduce MILD skew regimes (e.g. the ~2% DeepCAM gap of
/// Fig. 7a) between the extremes of kRandom and kClassSorted.
std::vector<std::vector<SampleId>> partition_dataset_dirichlet(
    const InMemoryDataset& dataset, std::size_t workers, double alpha,
    Rng& rng);

/// Measure per-worker label skew: mean over workers of the total-variation
/// distance between the worker's label distribution and the global one.
/// 0 = perfectly representative shards, -> 1 = fully disjoint class sets.
double partition_skew(const InMemoryDataset& dataset,
                      const std::vector<std::vector<SampleId>>& shards);

}  // namespace dshuf::data
