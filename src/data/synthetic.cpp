#include "data/synthetic.hpp"

#include <cmath>

namespace dshuf::data {

namespace {

/// Random unit vector of dimension d.
std::vector<double> unit_vector(std::size_t d, Rng& rng) {
  std::vector<double> v(d);
  double norm2 = 0.0;
  for (auto& x : v) {
    x = rng.normal();
    norm2 += x * x;
  }
  const double inv = 1.0 / std::max(1e-12, std::sqrt(norm2));
  for (auto& x : v) x *= inv;
  return v;
}

/// Smooth nonlinear warp: x_i += warp * sin(2 * x_{(i+1) mod d}).
/// Keeps the map bijective-ish and bounded so class geometry survives but a
/// purely linear decision boundary becomes suboptimal.
void apply_warp(float* row, std::size_t d, double warp) {
  if (warp == 0.0 || d < 2) return;
  // Use the pre-warp values for all reads (avoid cascading).
  std::vector<float> orig(row, row + d);
  for (std::size_t i = 0; i < d; ++i) {
    row[i] = orig[i] +
             static_cast<float>(warp * std::sin(2.0 * orig[(i + 1) % d]));
  }
}

struct ClusterGeometry {
  std::vector<std::vector<double>> centroids;  // [C][D]
};

ClusterGeometry make_geometry(std::size_t classes, std::size_t dim,
                              double radius, Rng& rng) {
  ClusterGeometry g;
  g.centroids.reserve(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    auto u = unit_vector(dim, rng);
    for (auto& x : u) x *= radius;
    g.centroids.push_back(std::move(u));
  }
  return g;
}

/// Draw `count` samples of class `c` into consecutive rows starting at
/// `row0` of `features`.
void emit_samples(Tensor& features, std::vector<std::uint32_t>& labels,
                  std::size_t row0, std::size_t count, std::uint32_t label,
                  const std::vector<double>& centroid, double spread,
                  double warp, double label_noise, std::size_t num_classes,
                  Rng& rng) {
  const std::size_t d = centroid.size();
  for (std::size_t s = 0; s < count; ++s) {
    float* row = features.data() + (row0 + s) * d;
    for (std::size_t i = 0; i < d; ++i) {
      row[i] = static_cast<float>(centroid[i] + spread * rng.normal());
    }
    apply_warp(row, d, warp);
    std::uint32_t lab = label;
    if (label_noise > 0.0 && rng.uniform() < label_noise) {
      lab = static_cast<std::uint32_t>(rng.uniform_u64(num_classes));
    }
    labels[row0 + s] = lab;
  }
}

}  // namespace

InMemoryDataset make_class_clusters(const ClassClusterSpec& spec) {
  auto split = make_class_clusters_split(spec, /*val_fraction=*/0.0);
  return std::move(split.train);
}

TrainValSplit make_class_clusters_split(const ClassClusterSpec& spec,
                                        double val_fraction) {
  DSHUF_CHECK_GT(spec.num_classes, 1U, "need at least two classes");
  DSHUF_CHECK_GT(spec.samples_per_class, 0U, "need samples per class");
  DSHUF_CHECK(val_fraction >= 0.0 && val_fraction < 1.0,
              "val_fraction must be in [0, 1)");
  Rng master(spec.seed);
  Rng geo_rng = master.fork(1);
  Rng train_rng = master.fork(2);
  Rng val_rng = master.fork(3);

  const double radius = spec.cluster_separation * spec.within_class_spread;
  const auto geometry =
      make_geometry(spec.num_classes, spec.feature_dim, radius, geo_rng);

  const auto val_per_class = static_cast<std::size_t>(
      std::ceil(val_fraction * static_cast<double>(spec.samples_per_class)));
  const std::size_t train_per_class = spec.samples_per_class;

  auto build = [&](std::size_t per_class, Rng& rng) {
    const std::size_t n = per_class * spec.num_classes;
    Tensor features({n, spec.feature_dim});
    std::vector<std::uint32_t> labels(n);
    for (std::size_t c = 0; c < spec.num_classes; ++c) {
      emit_samples(features, labels, c * per_class, per_class,
                   static_cast<std::uint32_t>(c), geometry.centroids[c],
                   spec.within_class_spread, spec.manifold_warp,
                   spec.label_noise, spec.num_classes, rng);
    }
    return InMemoryDataset(std::move(features), std::move(labels),
                           spec.num_classes);
  };

  TrainValSplit out;
  out.train = build(train_per_class, train_rng);
  if (val_per_class > 0) out.val = build(val_per_class, val_rng);
  return out;
}

TaxonomyDatasets make_taxonomy(const TaxonomySpec& spec, double val_fraction) {
  DSHUF_CHECK_GT(spec.coarse_classes, 1U, "need at least two coarse classes");
  DSHUF_CHECK_GT(spec.fine_per_coarse, 0U, "need fine classes per coarse");
  Rng master(spec.seed);
  Rng geo_rng = master.fork(11);
  Rng up_train = master.fork(12);
  Rng up_val = master.fork(13);
  Rng down_train = master.fork(14);
  Rng down_val = master.fork(15);

  const std::size_t fine_total = spec.coarse_classes * spec.fine_per_coarse;
  const double coarse_radius =
      spec.coarse_separation * spec.within_class_spread;
  const double fine_radius = spec.fine_separation * spec.within_class_spread;

  // Fine centroid = coarse centroid + local perturbation.
  const auto coarse_geo = make_geometry(spec.coarse_classes, spec.feature_dim,
                                        coarse_radius, geo_rng);
  std::vector<std::vector<double>> fine_centroids(fine_total);
  for (std::size_t k = 0; k < spec.coarse_classes; ++k) {
    for (std::size_t f = 0; f < spec.fine_per_coarse; ++f) {
      auto u = unit_vector(spec.feature_dim, geo_rng);
      auto c = coarse_geo.centroids[k];
      for (std::size_t i = 0; i < spec.feature_dim; ++i) {
        c[i] += fine_radius * u[i];
      }
      fine_centroids[k * spec.fine_per_coarse + f] = std::move(c);
    }
  }

  const auto val_per_fine = static_cast<std::size_t>(std::ceil(
      val_fraction * static_cast<double>(spec.samples_per_fine)));

  auto build = [&](std::size_t per_fine, bool coarse_labels, Rng& rng) {
    const std::size_t n = per_fine * fine_total;
    Tensor features({n, spec.feature_dim});
    std::vector<std::uint32_t> labels(n);
    const std::size_t classes =
        coarse_labels ? spec.coarse_classes : fine_total;
    for (std::size_t fc = 0; fc < fine_total; ++fc) {
      const auto label = static_cast<std::uint32_t>(
          coarse_labels ? fc / spec.fine_per_coarse : fc);
      emit_samples(features, labels, fc * per_fine, per_fine, label,
                   fine_centroids[fc], spec.within_class_spread,
                   spec.manifold_warp, /*label_noise=*/0.0, classes, rng);
    }
    return InMemoryDataset(std::move(features), std::move(labels), classes);
  };

  TaxonomyDatasets out;
  out.fine_classes = fine_total;
  out.coarse_classes = spec.coarse_classes;
  out.upstream.train = build(spec.samples_per_fine, false, up_train);
  out.upstream.val = build(std::max<std::size_t>(val_per_fine, 1), false,
                           up_val);
  out.downstream.train = build(spec.samples_per_fine, true, down_train);
  out.downstream.val = build(std::max<std::size_t>(val_per_fine, 1), true,
                             down_val);
  return out;
}

TrainValSplit make_climate_proxy(const ClimateSpec& spec,
                                 double val_fraction) {
  DSHUF_CHECK_GT(spec.num_samples, 16U, "climate proxy needs samples");
  DSHUF_CHECK(spec.background_fraction > 0.0 && spec.background_fraction < 1.0,
              "background fraction must be in (0, 1)");
  Rng master(spec.seed);
  Rng geo_rng = master.fork(21);
  Rng train_rng = master.fork(22);
  Rng val_rng = master.fork(23);

  // Three classes: background (0), "tropical cyclone" (1),
  // "atmospheric river" (2) — mirroring DeepCAM's segmentation classes.
  constexpr std::size_t kClasses = 3;
  const double radius = spec.separation;
  const auto geometry =
      make_geometry(kClasses, spec.feature_dim, radius, geo_rng);

  auto counts_for = [&](std::size_t total) {
    std::vector<std::size_t> counts(kClasses);
    counts[0] = static_cast<std::size_t>(
        spec.background_fraction * static_cast<double>(total));
    const std::size_t rest = total - counts[0];
    counts[1] = rest * 3 / 5;  // cyclones somewhat more common than rivers
    counts[2] = rest - counts[1];
    return counts;
  };

  auto build = [&](std::size_t total, Rng& rng) {
    const auto counts = counts_for(total);
    std::size_t n = 0;
    for (auto c : counts) n += c;
    Tensor features({n, spec.feature_dim});
    std::vector<std::uint32_t> labels(n);
    std::size_t row = 0;
    for (std::size_t c = 0; c < kClasses; ++c) {
      emit_samples(features, labels, row, counts[c],
                   static_cast<std::uint32_t>(c), geometry.centroids[c],
                   /*spread=*/1.0, spec.manifold_warp, /*label_noise=*/0.0,
                   kClasses, rng);
      row += counts[c];
    }
    return InMemoryDataset(std::move(features), std::move(labels), kClasses);
  };

  TrainValSplit out;
  out.train = build(spec.num_samples, train_rng);
  out.val = build(
      std::max<std::size_t>(
          16, static_cast<std::size_t>(
                  val_fraction * static_cast<double>(spec.num_samples))),
      val_rng);
  return out;
}

}  // namespace dshuf::data
