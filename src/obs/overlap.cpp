#include "obs/overlap.hpp"

#include <algorithm>

namespace dshuf::obs {

namespace {

struct Interval {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Sorted, coalesced union of the given intervals (in place).
void coalesce(std::vector<Interval>& v) {
  std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) {
    return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
  });
  std::size_t out = 0;
  for (const auto& iv : v) {
    if (out > 0 && iv.begin <= v[out - 1].end) {
      v[out - 1].end = std::max(v[out - 1].end, iv.end);
    } else {
      v[out++] = iv;
    }
  }
  v.resize(out);
}

/// Length of `iv`'s intersection with the coalesced union `merged`.
std::uint64_t intersect_us(const Interval& iv,
                           const std::vector<Interval>& merged) {
  // First union interval ending after iv.begin; candidates run from there.
  auto it = std::lower_bound(
      merged.begin(), merged.end(), iv.begin,
      [](const Interval& m, std::uint64_t t) { return m.end < t; });
  std::uint64_t hidden = 0;
  for (; it != merged.end() && it->begin < iv.end; ++it) {
    const std::uint64_t lo = std::max(iv.begin, it->begin);
    const std::uint64_t hi = std::min(iv.end, it->end);
    if (hi > lo) hidden += hi - lo;
  }
  return hidden;
}

}  // namespace

bool is_exchange_span(std::string_view name) {
  return name == "exchange.epoch" || name == "exchange.task" ||
         name == "sim.epoch.shuffle";
}

bool is_compute_span(std::string_view name) {
  return name == "sim.epoch.compute" || name.starts_with("compute.");
}

OverlapReport compute_overlap(std::span<const NamedSpan> spans) {
  OverlapReport report;
  std::vector<Interval> compute;
  std::vector<Interval> exchange;
  for (const auto& s : spans) {
    if (is_compute_span(s.name)) {
      ++report.compute_spans;
      compute.push_back({s.ts_us, s.ts_us + s.dur_us});
    } else if (is_exchange_span(s.name)) {
      ++report.exchange_spans;
      exchange.push_back({s.ts_us, s.ts_us + s.dur_us});
    }
  }
  coalesce(compute);
  for (const auto& iv : compute) report.compute_us += iv.end - iv.begin;
  for (const auto& iv : exchange) {
    report.exchange_us += iv.end - iv.begin;
    report.hidden_us += intersect_us(iv, compute);
  }
  return report;
}

OverlapReport compute_overlap(const std::vector<SpanEvent>& spans) {
  std::vector<NamedSpan> named;
  named.reserve(spans.size());
  for (const auto& s : spans) named.push_back({s.name, s.ts_us, s.dur_us});
  return compute_overlap(std::span<const NamedSpan>(named));
}

}  // namespace dshuf::obs
