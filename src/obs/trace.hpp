// RAII span tracer with Chrome trace-event export.
//
// A span measures one named region of one thread:
//
//   {
//     DSHUF_SPAN("exchange.epoch", {{"epoch", std::to_string(epoch)}});
//     ... work ...
//   }  // span recorded on scope exit
//
// or, when the guard needs attributes computed inside the region:
//
//   obs::SpanGuard span("exchange.fence");
//   ... work ...
//   span.attr("strays", std::to_string(n));
//   const std::uint64_t dur_us = span.finish();
//
// Design points (DESIGN.md §9):
//
//   * Recording is OFF by default; SpanGuard still measures (two clock
//     reads) so callers can use finish() as a timer, but nothing is
//     stored until Tracer::set_enabled(true).
//   * Completed spans append to a per-thread buffer (no lock); buffers
//     flush into the tracer under LockRank::kObs when they grow large,
//     when the owning thread exits, and — for scheduler pool workers —
//     when the worker parks with no work left (Tracer::flush_thread).
//     snapshot() therefore sees every span of joined threads, idle
//     workers, and the calling thread — export after World::run has
//     joined its rank threads. Flow points skip the buffer entirely and
//     land in the shared store as they are recorded.
//   * Timestamps come from obs_clock() (obs/clock.hpp): steady_clock in
//     production, a VirtualClock in determinism tests, which together
//     with the deterministic snapshot ordering makes trace exports
//     byte-identical across runs of a seeded scenario.
//   * Rank threads label themselves with set_thread_track(rank); tracks
//     become Chrome trace tids, so Perfetto shows one lane per rank.
//
// Cross-rank causality (DESIGN.md §13): besides spans, the tracer records
// flow points — the send/step/finish endpoints of one logical message
// identified by a shared 64-bit id. The exchange derives the id purely
// from (epoch, origin, destination/round), carries it in the coalesced
// frame header, and re-derives it from the tag namespace on the
// per-sample wire, so a merged multi-rank trace draws an arrow from every
// send to its matching receive (retransmits become "step" points on the
// same arrow). Threads may also label themselves with a human-readable
// name; names become Chrome thread_name metadata events.
//
// Export formats: Chrome trace-event JSON ("X" complete events, "s"/"t"/
// "f" flow events, "M" thread/process-name metadata — load the file at
// ui.perfetto.dev or chrome://tracing) and a compact per-epoch CSV
// aggregating spans that carry an "epoch" attribute.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace dshuf::obs {

/// One completed span. `track` maps to the Chrome trace tid.
struct SpanEvent {
  std::string name;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  int track = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Which endpoint of a logical message a flow point marks: the original
/// send ("s"), a retransmission of the same bytes ("t"), or the receive
/// that consumed it ("f").
enum class FlowPhase { kSend, kStep, kFinish };

/// One flow point. Points sharing an `id` form one arrow in the Chrome
/// trace; the id must be a pure function of seeded protocol state
/// (epoch/origin/destination), never of timing, so golden traces stay
/// byte-identical.
struct FlowEvent {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t ts_us = 0;
  int track = 0;
  FlowPhase phase = FlowPhase::kSend;
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer {
 public:
  /// The process-wide tracer (leaked at exit, like the registry).
  static Tracer& instance();

  /// Recording toggle; cheap atomic read on the span path.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const;

  /// Drop every recorded span and flow point (calling thread's buffers
  /// included). Thread-name labels persist: they describe live threads,
  /// not recorded data (scheduler workers outlive a between-arm clear).
  void clear();

  /// Label the calling thread's spans with `track` (Chrome trace tid).
  /// Rank threads pass their rank; scheduler workers use
  /// kWorkerTrackBase + index; unlabelled threads get stable arbitrary
  /// ids >= 1000 in first-use order.
  static void set_thread_track(int track);
  [[nodiscard]] static int thread_track();

  /// Chrome tid lane for scheduler worker `index` (kept clear of rank
  /// tracks below and auto tracks at 1000+).
  static constexpr int kWorkerTrackBase = 500;

  /// Name the calling thread's track; exported as a Chrome thread_name
  /// metadata event. Re-registering the same track overwrites.
  static void set_thread_name(const std::string& name);

  /// (track, name) labels registered so far, sorted by track.
  [[nodiscard]] std::vector<std::pair<int, std::string>> thread_names();

  /// Append one completed span to the calling thread's buffer.
  void record(SpanEvent ev);

  /// Record one flow point directly into the shared store (no-op when
  /// recording is disabled). Unlike spans, flows skip the per-thread
  /// buffer: they are rare and often emitted from pool workers that
  /// outlive the export, where buffering would hide them from
  /// snapshots until thread exit.
  void record_flow(FlowEvent ev);

  /// Convenience: record a flow point on the calling thread's track at
  /// the current obs_clock() time.
  void flow_point(const char* name, std::uint64_t id, FlowPhase phase,
                  std::vector<std::pair<std::string, std::string>> attrs = {});

  /// Flush the calling thread's buffer and return every span recorded by
  /// this thread and by threads that have exited, in a deterministic
  /// order (sorted by track, start, duration, name, attributes).
  [[nodiscard]] std::vector<SpanEvent> snapshot();

  /// Flow-point counterpart of snapshot(), sorted by (track, ts, id,
  /// phase, name, attributes).
  [[nodiscard]] std::vector<FlowEvent> flow_snapshot();

  /// Chrome trace-event JSON document over snapshot(): thread/process
  /// name metadata first (only when any thread registered a name), then
  /// "X" spans, then "s"/"t"/"f" flow events.
  [[nodiscard]] std::string chrome_trace_json();
  bool write_chrome_trace(const std::string& path);

  /// Compact per-epoch report: `epoch,span,count,total_us` rows over the
  /// spans carrying an "epoch" attribute, sorted by (epoch, span).
  [[nodiscard]] std::string epoch_report_csv();
  bool write_epoch_report_csv(const std::string& path);

  /// Drain the calling thread's span buffer into the shared store.
  /// Long-lived threads that record on behalf of others (scheduler
  /// workers) call this when going idle so their spans become visible
  /// to exports without waiting for thread exit. Cheap no-op when the
  /// buffer is empty.
  static void flush_thread();

  // Internal: move a dying thread's buffer into the flushed store.
  void absorb(std::vector<SpanEvent>&& events);

 private:
  Tracer() = default;
};

/// RAII span. Always measures (start captured at construction); records
/// into the tracer only if recording was enabled when constructed.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name);
  SpanGuard(const char* name,
            std::initializer_list<std::pair<const char*, std::string>> attrs);
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  ~SpanGuard() { finish(); }

  /// Attach a key/value attribute (no-op when not recording).
  SpanGuard& attr(const char* key, std::string value);

  /// Close the span now (idempotent): records it if enabled and returns
  /// the measured duration in microseconds.
  std::uint64_t finish();

 private:
  const char* name_;
  std::uint64_t start_us_;
  std::uint64_t dur_us_ = 0;
  bool recording_;
  bool open_ = true;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

}  // namespace dshuf::obs

#define DSHUF_OBS_CONCAT_INNER(a, b) a##b
#define DSHUF_OBS_CONCAT(a, b) DSHUF_OBS_CONCAT_INNER(a, b)
/// Scope-level span: DSHUF_SPAN("name") or
/// DSHUF_SPAN("name", {{"key", value}, ...}).
#define DSHUF_SPAN(...)            \
  ::dshuf::obs::SpanGuard DSHUF_OBS_CONCAT(dshuf_span_guard_, \
                                           __LINE__)(__VA_ARGS__)
