// RAII span tracer with Chrome trace-event export.
//
// A span measures one named region of one thread:
//
//   {
//     DSHUF_SPAN("exchange.epoch", {{"epoch", std::to_string(epoch)}});
//     ... work ...
//   }  // span recorded on scope exit
//
// or, when the guard needs attributes computed inside the region:
//
//   obs::SpanGuard span("exchange.fence");
//   ... work ...
//   span.attr("strays", std::to_string(n));
//   const std::uint64_t dur_us = span.finish();
//
// Design points (DESIGN.md §9):
//
//   * Recording is OFF by default; SpanGuard still measures (two clock
//     reads) so callers can use finish() as a timer, but nothing is
//     stored until Tracer::set_enabled(true).
//   * Completed spans append to a per-thread buffer (no lock); buffers
//     flush into the tracer under LockRank::kObs when they grow large and
//     when the owning thread exits. snapshot() therefore sees every span
//     of joined threads plus the calling thread's — export after
//     World::run has joined its rank threads.
//   * Timestamps come from obs_clock() (obs/clock.hpp): steady_clock in
//     production, a VirtualClock in determinism tests, which together
//     with the deterministic snapshot ordering makes trace exports
//     byte-identical across runs of a seeded scenario.
//   * Rank threads label themselves with set_thread_track(rank); tracks
//     become Chrome trace tids, so Perfetto shows one lane per rank.
//
// Export formats: Chrome trace-event JSON ("X" complete events —
// load the file at ui.perfetto.dev or chrome://tracing) and a compact
// per-epoch CSV aggregating spans that carry an "epoch" attribute.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace dshuf::obs {

/// One completed span. `track` maps to the Chrome trace tid.
struct SpanEvent {
  std::string name;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  int track = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer {
 public:
  /// The process-wide tracer (leaked at exit, like the registry).
  static Tracer& instance();

  /// Recording toggle; cheap atomic read on the span path.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const;

  /// Drop every recorded span (calling thread's buffer included).
  void clear();

  /// Label the calling thread's spans with `track` (Chrome trace tid).
  /// Rank threads pass their rank; unlabelled threads get stable
  /// arbitrary ids >= 1000 in first-use order.
  static void set_thread_track(int track);
  [[nodiscard]] static int thread_track();

  /// Append one completed span to the calling thread's buffer.
  void record(SpanEvent ev);

  /// Flush the calling thread's buffer and return every span recorded by
  /// this thread and by threads that have exited, in a deterministic
  /// order (sorted by track, start, duration, name, attributes).
  [[nodiscard]] std::vector<SpanEvent> snapshot();

  /// Chrome trace-event JSON document over snapshot().
  [[nodiscard]] std::string chrome_trace_json();
  bool write_chrome_trace(const std::string& path);

  /// Compact per-epoch report: `epoch,span,count,total_us` rows over the
  /// spans carrying an "epoch" attribute, sorted by (epoch, span).
  [[nodiscard]] std::string epoch_report_csv();
  bool write_epoch_report_csv(const std::string& path);

  // Internal: move a dying thread's buffer into the flushed store.
  void absorb(std::vector<SpanEvent>&& events);

 private:
  Tracer() = default;
};

/// RAII span. Always measures (start captured at construction); records
/// into the tracer only if recording was enabled when constructed.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name);
  SpanGuard(const char* name,
            std::initializer_list<std::pair<const char*, std::string>> attrs);
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  ~SpanGuard() { finish(); }

  /// Attach a key/value attribute (no-op when not recording).
  SpanGuard& attr(const char* key, std::string value);

  /// Close the span now (idempotent): records it if enabled and returns
  /// the measured duration in microseconds.
  std::uint64_t finish();

 private:
  const char* name_;
  std::uint64_t start_us_;
  std::uint64_t dur_us_ = 0;
  bool recording_;
  bool open_ = true;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

}  // namespace dshuf::obs

#define DSHUF_OBS_CONCAT_INNER(a, b) a##b
#define DSHUF_OBS_CONCAT(a, b) DSHUF_OBS_CONCAT_INNER(a, b)
/// Scope-level span: DSHUF_SPAN("name") or
/// DSHUF_SPAN("name", {{"key", value}, ...}).
#define DSHUF_SPAN(...)            \
  ::dshuf::obs::SpanGuard DSHUF_OBS_CONCAT(dshuf_span_guard_, \
                                           __LINE__)(__VA_ARGS__)
