#include "obs/timeseries.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>

#include "obs/clock.hpp"

namespace dshuf::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// Deterministic double formatting for the JSON export: %.6g prints
/// integers without a trailing ".0" and keeps sub-octave interpolation
/// digits, and is a pure function of the bits.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

double quantile_at(const std::vector<std::uint64_t>& bounds,
                   const std::vector<std::uint64_t>& counts,
                   std::uint64_t total, double q) {
  // Target rank in [1, total]: the smallest r with cumulative >= r covers
  // fraction q of the observations.
  std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(total) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (cum + counts[i] < rank) {
      cum += counts[i];
      continue;
    }
    const double lo =
        i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
    const double hi = i < bounds.size()
                          ? static_cast<double>(bounds[i])
                          : 2.0 * static_cast<double>(bounds.back());
    const double frac = (static_cast<double>(rank - cum) - 0.5) /
                        static_cast<double>(counts[i]);
    return lo + (hi - lo) * frac;
  }
  return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
}

}  // namespace

Quantiles estimate_quantiles(const std::vector<std::uint64_t>& bounds,
                             const std::vector<std::uint64_t>& counts) {
  Quantiles q;
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0 || bounds.empty()) return q;
  q.p50 = quantile_at(bounds, counts, total, 0.50);
  q.p99 = quantile_at(bounds, counts, total, 0.99);
  q.p999 = quantile_at(bounds, counts, total, 0.999);
  return q;
}

TimeseriesSampler& TimeseriesSampler::instance() {
  // Leaked: epoch ticks may race static destruction in odd exits.
  static TimeseriesSampler* s = new TimeseriesSampler();
  return *s;
}

void TimeseriesSampler::set_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_release);
}

bool TimeseriesSampler::enabled() const {
  return g_enabled.load(std::memory_order_acquire);
}

void TimeseriesSampler::reset() {
  // Registry::snapshot() shares LockRank::kObs with mu_, so take it
  // before locking (never nested).
  MetricsSnapshot cur = Registry::instance().snapshot();
  const std::uint64_t now = obs_clock().now_us();
  std::lock_guard<RankedMutex> lk(mu_);
  base_ = std::move(cur);
  base_ts_us_ = now;
  windows_.clear();
}

void TimeseriesSampler::sample_window(const std::string& label) {
  if (!enabled()) return;
  MetricsSnapshot cur = Registry::instance().snapshot();
  const std::uint64_t now = obs_clock().now_us();
  std::lock_guard<RankedMutex> lk(mu_);

  TimeseriesWindow w;
  w.label = label;
  w.t_start_us = base_ts_us_;
  w.t_end_us = now;

  // Both snapshots are sorted by name; walk them in lockstep. A name
  // missing from the base first appeared this window (delta = total); a
  // total below the base means the registry was reset mid-window (treat
  // the new total as the delta).
  {
    std::size_t j = 0;
    for (const auto& [name, v] : cur.counters) {
      while (j < base_.counters.size() && base_.counters[j].first < name) ++j;
      std::uint64_t prev = 0;
      if (j < base_.counters.size() && base_.counters[j].first == name) {
        prev = base_.counters[j].second;
      }
      const std::uint64_t delta = v >= prev ? v - prev : v;
      if (delta != 0) w.counters.emplace_back(name, delta);
    }
  }
  w.gauges = cur.gauges;
  {
    std::size_t j = 0;
    for (const auto& h : cur.histograms) {
      while (j < base_.histograms.size() && base_.histograms[j].name < h.name) {
        ++j;
      }
      const MetricsSnapshot::Hist* prev = nullptr;
      if (j < base_.histograms.size() && base_.histograms[j].name == h.name &&
          base_.histograms[j].counts.size() == h.counts.size()) {
        prev = &base_.histograms[j];
      }
      std::vector<std::uint64_t> dcounts(h.counts.size(), 0);
      std::uint64_t dcount = h.count;
      std::uint64_t dsum = h.sum;
      bool rolled_back = prev != nullptr && h.count < prev->count;
      if (prev != nullptr && !rolled_back) {
        dcount = h.count - prev->count;
        dsum = h.sum >= prev->sum ? h.sum - prev->sum : h.sum;
        for (std::size_t i = 0; i < dcounts.size(); ++i) {
          dcounts[i] = h.counts[i] >= prev->counts[i]
                           ? h.counts[i] - prev->counts[i]
                           : h.counts[i];
        }
      } else {
        dcounts = h.counts;
      }
      if (dcount == 0) continue;
      TimeseriesWindow::Hist hw;
      hw.name = h.name;
      hw.count = dcount;
      hw.sum = dsum;
      hw.q = estimate_quantiles(h.bounds, dcounts);
      w.histograms.push_back(std::move(hw));
    }
  }

  windows_.push_back(std::move(w));
  base_ = std::move(cur);
  base_ts_us_ = now;
}

std::vector<TimeseriesWindow> TimeseriesSampler::windows() const {
  std::lock_guard<RankedMutex> lk(mu_);
  return windows_;
}

std::size_t TimeseriesSampler::window_count() const {
  std::lock_guard<RankedMutex> lk(mu_);
  return windows_.size();
}

std::string TimeseriesSampler::to_json() const {
  const auto ws = windows();
  std::string out;
  out += "{\n  \"schema\": \"dshuf.timeseries.v1\",\n  \"windows\": [";
  for (std::size_t i = 0; i < ws.size(); ++i) {
    const auto& w = ws[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"index\": " + std::to_string(i) + ", \"label\": \"" +
           w.label + "\", \"t_start_us\": " + std::to_string(w.t_start_us) +
           ", \"t_end_us\": " + std::to_string(w.t_end_us) +
           ",\n     \"counters\": {";
    for (std::size_t j = 0; j < w.counters.size(); ++j) {
      if (j > 0) out += ", ";
      out += "\"" + w.counters[j].first +
             "\": " + std::to_string(w.counters[j].second);
    }
    out += "},\n     \"gauges\": {";
    for (std::size_t j = 0; j < w.gauges.size(); ++j) {
      if (j > 0) out += ", ";
      out += "\"" + w.gauges[j].first +
             "\": " + std::to_string(w.gauges[j].second);
    }
    out += "},\n     \"histograms\": {";
    for (std::size_t j = 0; j < w.histograms.size(); ++j) {
      const auto& h = w.histograms[j];
      if (j > 0) out += ", ";
      out += "\"" + h.name + "\": {\"count\": " + std::to_string(h.count) +
             ", \"sum\": " + std::to_string(h.sum) +
             ", \"p50\": " + fmt_double(h.q.p50) +
             ", \"p99\": " + fmt_double(h.q.p99) +
             ", \"p999\": " + fmt_double(h.q.p999) + "}";
    }
    out += "}}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool TimeseriesSampler::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return false;
  out << to_json();
  return out.good();
}

void tick_timeseries_epoch(std::size_t epoch) {
  auto& sampler = TimeseriesSampler::instance();
  if (!sampler.enabled()) return;
  sampler.sample_window("epoch " + std::to_string(epoch));
}

}  // namespace dshuf::obs
