// Injectable time source for the observability layer.
//
// Spans and latency histograms must be meaningful on real hardware
// (steady_clock) yet byte-identical across runs in simulator tests; the
// process-wide clock pointer makes both possible. The default is a
// monotonic SteadyClock anchored at process start; tests and model-driven
// benches install a VirtualClock and advance it deterministically, so two
// runs with the same seeds emit the exact same timestamps (the trace
// golden-file test relies on this).
#pragma once

#include <atomic>
#include <cstdint>

namespace dshuf::obs {

/// Microsecond time source consulted by every span/histogram measurement.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic microseconds since an arbitrary per-clock origin.
  virtual std::uint64_t now_us() = 0;
};

/// Wall time: std::chrono::steady_clock anchored at first use, so traces
/// start near ts = 0 instead of at an opaque boot offset.
class SteadyClock final : public Clock {
 public:
  std::uint64_t now_us() override;
};

/// Manually advanced clock for deterministic traces. Thread-safe: the
/// harness advances it from one thread while instrumented worker threads
/// read it.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(std::uint64_t start_us = 0) : now_us_(start_us) {}

  std::uint64_t now_us() override {
    return now_us_.load(std::memory_order_acquire);
  }
  void advance_us(std::uint64_t us) {
    now_us_.fetch_add(us, std::memory_order_acq_rel);
  }
  void set_us(std::uint64_t us) {
    now_us_.store(us, std::memory_order_release);
  }

 private:
  std::atomic<std::uint64_t> now_us_;
};

/// The process-wide clock (SteadyClock unless one was installed).
Clock& obs_clock();

/// Install `clock` as the process-wide clock (nullptr restores the
/// default SteadyClock). Returns the previously installed clock (nullptr
/// when the default was active). The caller keeps ownership and must keep
/// the clock alive until it is uninstalled.
Clock* set_obs_clock(Clock* clock);

}  // namespace dshuf::obs
