// Windowed time-series telemetry over the metrics registry.
//
// A TimeseriesSampler turns the registry's monotonically-growing totals
// into per-window deltas: each sample_window() call snapshots every
// instrument, subtracts the previous window's snapshot, and stores one
// TimeseriesWindow — "what happened since the last boundary". Benches
// tick it once per epoch (sim/trainer and sim/overlap call
// tick_timeseries_epoch()), so the export answers "which epoch was slow"
// rather than "what was the lifetime total".
//
// Histogram windows carry p50/p99/p999 estimated from the per-window
// bucket deltas. With the default log2 buckets the estimate interpolates
// linearly inside the bucket that holds the target rank, so the relative
// error is bounded by one octave (the true value and the estimate share a
// bucket [2^(i-1), 2^i]; see DESIGN.md §13 for the exact bound).
//
// Export: `dshuf.timeseries.v1` JSON, deterministic given deterministic
// instrument values and clock (windows are sorted by creation, metric
// names by the registry's snapshot order), so the golden chaos-trace test
// can pin it byte-for-byte under a VirtualClock.
//
// Thread contract: sample_window()/reset() are serialised internally but
// are meant to be driven from one place (the epoch loop / the bench
// harness); instruments keep updating lock-free underneath. Like the
// tracer, sampling is OFF until set_enabled(true).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace dshuf::obs {

/// Quantile estimates from bucketed counts.
struct Quantiles {
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// Estimate p50/p99/p999 from histogram bucket counts (`counts` has
/// bounds.size() + 1 entries, last = overflow). The value at rank r is
/// placed by linear interpolation inside the bucket containing r; the
/// overflow bucket extrapolates to 2 * bounds.back(). All zeros when the
/// histogram is empty.
[[nodiscard]] Quantiles estimate_quantiles(
    const std::vector<std::uint64_t>& bounds,
    const std::vector<std::uint64_t>& counts);

/// One closed window: deltas since the previous boundary.
struct TimeseriesWindow {
  struct Hist {
    std::string name;
    std::uint64_t count = 0;  // observations inside this window
    std::uint64_t sum = 0;
    Quantiles q;
  };
  std::string label;
  std::uint64_t t_start_us = 0;
  std::uint64_t t_end_us = 0;
  /// Counter deltas, non-zero entries only, registry name order.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// Gauges are levels, not totals: point-in-time value at the boundary.
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  /// Histogram windows with at least one observation.
  std::vector<Hist> histograms;
};

class TimeseriesSampler {
 public:
  /// The process-wide sampler (leaked at exit, like the registry).
  static TimeseriesSampler& instance();

  /// Sampling toggle; cheap atomic read at the tick sites.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const;

  /// Drop every window and re-anchor the baseline at the registry's
  /// current totals and the current obs_clock() time.
  void reset();

  /// Close the current window: snapshot the registry, store the deltas
  /// since the previous boundary under `label`, and make this snapshot
  /// the next baseline. No-op when disabled.
  void sample_window(const std::string& label);

  [[nodiscard]] std::vector<TimeseriesWindow> windows() const;
  [[nodiscard]] std::size_t window_count() const;

  /// `dshuf.timeseries.v1` JSON document over windows().
  [[nodiscard]] std::string to_json() const;
  bool write_json(const std::string& path) const;

 private:
  TimeseriesSampler() = default;

  // Never held while taking the registry snapshot (same lock rank):
  // snapshot first, then lock to fold.
  mutable RankedMutex mu_{LockRank::kObs, "obs.timeseries"};
  MetricsSnapshot base_;
  std::uint64_t base_ts_us_ = 0;
  std::vector<TimeseriesWindow> windows_;
};

/// Epoch-boundary tick shared by the trainer and the overlap driver:
/// closes the window `epoch <e>` when the sampler is enabled.
void tick_timeseries_epoch(std::size_t epoch);

}  // namespace dshuf::obs
