#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "obs/clock.hpp"
#include "util/ranked_mutex.hpp"

namespace dshuf::obs {

namespace {

/// Flush threshold for per-thread buffers; spans are epoch/phase-grained,
/// so this is rarely hit outside stress tests.
constexpr std::size_t kFlushAt = 4096;

std::atomic<bool> g_enabled{false};

struct TracerState {
  RankedMutex mu{LockRank::kObs, "obs.tracer"};
  std::vector<SpanEvent> flushed;
  std::vector<FlowEvent> flushed_flows;
  std::map<int, std::string> names;  // track -> thread_name label
  std::atomic<int> next_auto_track{1000};
};

TracerState& state() {
  // Leaked: thread-exit flushes may run during static destruction.
  static TracerState* s = new TracerState();
  return *s;
}

struct ThreadBuf {
  std::vector<SpanEvent> events;
  ~ThreadBuf() {
    if (!events.empty()) Tracer::instance().absorb(std::move(events));
  }
};

ThreadBuf& thread_buf() {
  thread_local ThreadBuf buf;
  return buf;
}

thread_local int t_track = -1;

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Total order over spans so exports are reproducible whatever the thread
/// flush interleaving was: ties broken by every field.
bool span_less(const SpanEvent& a, const SpanEvent& b) {
  return std::tie(a.track, a.ts_us, a.dur_us, a.name, a.attrs) <
         std::tie(b.track, b.ts_us, b.dur_us, b.name, b.attrs);
}

bool flow_less(const FlowEvent& a, const FlowEvent& b) {
  const int pa = static_cast<int>(a.phase);
  const int pb = static_cast<int>(b.phase);
  return std::tie(a.track, a.ts_us, a.id, pa, a.name, a.attrs) <
         std::tie(b.track, b.ts_us, b.id, pb, b.name, b.attrs);
}

const char* flow_ph(FlowPhase p) {
  switch (p) {
    case FlowPhase::kSend: return "s";
    case FlowPhase::kStep: return "t";
    case FlowPhase::kFinish: return "f";
  }
  return "s";
}

void append_attrs_json(
    std::string& out,
    const std::vector<std::pair<std::string, std::string>>& attrs) {
  out += ",\"args\":{";
  for (std::size_t j = 0; j < attrs.size(); ++j) {
    if (j > 0) out += ",";
    out += "\"";
    append_json_escaped(out, attrs[j].first);
    out += "\":\"";
    append_json_escaped(out, attrs[j].second);
    out += "\"";
  }
  out += "}";
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer();
  return *t;
}

void Tracer::set_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_release);
}

bool Tracer::enabled() const {
  return g_enabled.load(std::memory_order_acquire);
}

void Tracer::clear() {
  thread_buf().events.clear();
  std::lock_guard<RankedMutex> lk(state().mu);
  state().flushed.clear();
  state().flushed_flows.clear();
}

void Tracer::flush_thread() {
  auto& buf = thread_buf();
  if (!buf.events.empty()) {
    instance().absorb(std::move(buf.events));
    buf.events.clear();
  }
}

void Tracer::set_thread_track(int track) { t_track = track; }

void Tracer::set_thread_name(const std::string& name) {
  const int track = thread_track();
  std::lock_guard<RankedMutex> lk(state().mu);
  state().names[track] = name;
}

std::vector<std::pair<int, std::string>> Tracer::thread_names() {
  std::lock_guard<RankedMutex> lk(state().mu);
  return {state().names.begin(), state().names.end()};
}

int Tracer::thread_track() {
  if (t_track < 0) {
    t_track = state().next_auto_track.fetch_add(1, std::memory_order_relaxed);
  }
  return t_track;
}

void Tracer::record(SpanEvent ev) {
  auto& buf = thread_buf();
  buf.events.push_back(std::move(ev));
  if (buf.events.size() >= kFlushAt) {
    absorb(std::move(buf.events));
    buf.events.clear();
  }
}

void Tracer::record_flow(FlowEvent ev) {
  if (!enabled()) return;
  // Flows bypass the per-thread buffer: they are rare (one endpoint per
  // peer per epoch, not per sample) and are often recorded from pool
  // workers that outlive the export — a thread-local buffer would strand
  // them invisibly until thread exit, breaking dshuf_trace --check's
  // send-before-receive invariant on any trace written while the
  // scheduler is alive.
  std::lock_guard<RankedMutex> lk(state().mu);
  state().flushed_flows.push_back(std::move(ev));
}

void Tracer::flow_point(
    const char* name, std::uint64_t id, FlowPhase phase,
    std::vector<std::pair<std::string, std::string>> attrs) {
  if (!enabled()) return;
  FlowEvent ev;
  ev.name = name;
  ev.id = id;
  ev.ts_us = obs_clock().now_us();
  ev.track = thread_track();
  ev.phase = phase;
  ev.attrs = std::move(attrs);
  record_flow(std::move(ev));
}

void Tracer::absorb(std::vector<SpanEvent>&& events) {
  std::lock_guard<RankedMutex> lk(state().mu);
  auto& flushed = state().flushed;
  flushed.insert(flushed.end(), std::make_move_iterator(events.begin()),
                 std::make_move_iterator(events.end()));
}

std::vector<SpanEvent> Tracer::snapshot() {
  auto& buf = thread_buf();
  if (!buf.events.empty()) {
    absorb(std::move(buf.events));
    buf.events.clear();
  }
  std::vector<SpanEvent> out;
  {
    std::lock_guard<RankedMutex> lk(state().mu);
    out = state().flushed;
  }
  std::sort(out.begin(), out.end(), span_less);
  return out;
}

std::vector<FlowEvent> Tracer::flow_snapshot() {
  std::vector<FlowEvent> out;
  {
    std::lock_guard<RankedMutex> lk(state().mu);
    out = state().flushed_flows;
  }
  std::sort(out.begin(), out.end(), flow_less);
  return out;
}

std::string Tracer::chrome_trace_json() {
  const auto events = snapshot();
  const auto flows = flow_snapshot();
  const auto names = thread_names();
  std::string out;
  out += "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };
  // Metadata first so viewers label lanes before any slice references
  // them. A trace with no registered names stays pure-"X"/flow.
  if (!names.empty()) {
    sep();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
           "\"args\":{\"name\":\"dshuf\"}}";
    for (const auto& [track, name] : names) {
      sep();
      out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
             std::to_string(track) + ",\"args\":{\"name\":\"";
      append_json_escaped(out, name);
      out += "\"}}";
    }
  }
  for (const auto& e : events) {
    sep();
    out += "{\"name\":\"";
    append_json_escaped(out, e.name);
    out += "\",\"cat\":\"dshuf\",\"ph\":\"X\",\"ts\":" +
           std::to_string(e.ts_us) + ",\"dur\":" + std::to_string(e.dur_us) +
           ",\"pid\":0,\"tid\":" + std::to_string(e.track);
    if (!e.attrs.empty()) append_attrs_json(out, e.attrs);
    out += "}";
  }
  for (const auto& f : flows) {
    sep();
    out += "{\"name\":\"";
    append_json_escaped(out, f.name);
    out += "\",\"cat\":\"dshuf.flow\",\"ph\":\"";
    out += flow_ph(f.phase);
    out += "\",\"ts\":" + std::to_string(f.ts_us) +
           ",\"pid\":0,\"tid\":" + std::to_string(f.track) +
           ",\"id\":\"" + std::to_string(f.id) + "\"";
    if (f.phase == FlowPhase::kFinish) out += ",\"bp\":\"e\"";
    if (!f.attrs.empty()) append_attrs_json(out, f.attrs);
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return false;
  out << chrome_trace_json();
  return out.good();
}

std::string Tracer::epoch_report_csv() {
  const auto events = snapshot();
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
  };
  // Keyed by (numeric epoch, span name); the epoch attribute is written
  // by instrumentation as a decimal integer.
  std::map<std::pair<std::uint64_t, std::string>, Agg> agg;
  for (const auto& e : events) {
    for (const auto& [k, v] : e.attrs) {
      if (k != "epoch") continue;
      std::uint64_t epoch = 0;
      bool numeric = !v.empty();
      for (const char c : v) {
        if (c < '0' || c > '9') {
          numeric = false;
          break;
        }
        epoch = epoch * 10 + static_cast<std::uint64_t>(c - '0');
      }
      if (!numeric) break;
      auto& a = agg[{epoch, e.name}];
      ++a.count;
      a.total_us += e.dur_us;
      break;
    }
  }
  std::ostringstream out;
  out << "epoch,span,count,total_us\n";
  for (const auto& [key, a] : agg) {
    out << key.first << "," << key.second << "," << a.count << ","
        << a.total_us << "\n";
  }
  return out.str();
}

bool Tracer::write_epoch_report_csv(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return false;
  out << epoch_report_csv();
  return out.good();
}

SpanGuard::SpanGuard(const char* name)
    : name_(name),
      start_us_(obs_clock().now_us()),
      recording_(Tracer::instance().enabled()) {}

SpanGuard::SpanGuard(
    const char* name,
    std::initializer_list<std::pair<const char*, std::string>> attrs)
    : SpanGuard(name) {
  if (recording_) {
    for (const auto& [k, v] : attrs) attrs_.emplace_back(k, v);
  }
}

SpanGuard& SpanGuard::attr(const char* key, std::string value) {
  if (recording_ && open_) attrs_.emplace_back(key, std::move(value));
  return *this;
}

std::uint64_t SpanGuard::finish() {
  if (!open_) return dur_us_;
  open_ = false;
  const std::uint64_t end = obs_clock().now_us();
  dur_us_ = end >= start_us_ ? end - start_us_ : 0;
  if (recording_) {
    SpanEvent ev;
    ev.name = name_;
    ev.ts_us = start_us_;
    ev.dur_us = dur_us_;
    ev.track = Tracer::thread_track();
    ev.attrs = std::move(attrs_);
    Tracer::instance().record(std::move(ev));
  }
  return dur_us_;
}

}  // namespace dshuf::obs
