#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace dshuf::obs {

Histogram::Histogram()
    : bounds_(log2_latency_bounds_us().begin(), log2_latency_bounds_us().end()),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]),
      log2_(true) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  DSHUF_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bounds must be ascending");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(std::uint64_t v) {
  std::size_t bucket;
  if (log2_) {
    // bounds_[i] == 2^i with inclusive upper edges, so the bucket of v is
    // bit_width(v - 1): v in (2^(i-1), 2^i] -> i. Branch-free except the
    // v<=1 floor and the overflow clamp.
    bucket = v <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(v - 1));
    if (bucket > bounds_.size()) bucket = bounds_.size();
  } else {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    bucket = static_cast<std::size_t>(it - bounds_.begin());
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::span<const std::uint64_t> log2_latency_bounds_us() {
  // Powers of two: 1us .. 2^39us (~6.4 days), 40 bounds + overflow.
  static const std::vector<std::uint64_t> bounds = [] {
    std::vector<std::uint64_t> b;
    for (int i = 0; i < 40; ++i) b.push_back(1ull << i);
    return b;
  }();
  return bounds;
}

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out += "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    append_json_escaped(out, counters[i].first);
    out += "\": " + std::to_string(counters[i].second);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    append_json_escaped(out, gauges[i].first);
    out += "\": " + std::to_string(gauges[i].second);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    append_json_escaped(out, h.name);
    out += "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) + ", \"bounds\": [";
    for (std::size_t j = 0; j < h.bounds.size(); ++j) {
      if (j > 0) out += ", ";
      out += std::to_string(h.bounds[j]);
    }
    out += "], \"counts\": [";
    for (std::size_t j = 0; j < h.counts.size(); ++j) {
      if (j > 0) out += ", ";
      out += std::to_string(h.counts[j]);
    }
    out += "]}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream out;
  out << "kind,name,field,value\n";
  for (const auto& [name, v] : counters) {
    out << "counter," << name << ",value," << v << "\n";
  }
  for (const auto& [name, v] : gauges) {
    out << "gauge," << name << ",value," << v << "\n";
  }
  for (const auto& h : histograms) {
    out << "histogram," << h.name << ",count," << h.count << "\n";
    out << "histogram," << h.name << ",sum," << h.sum << "\n";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      out << "histogram," << h.name << ",le_"
          << (i < h.bounds.size() ? std::to_string(h.bounds[i]) : "inf")
          << "," << h.counts[i] << "\n";
    }
  }
  return out.str();
}

bool MetricsSnapshot::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return false;
  out << to_json();
  return out.good();
}

bool MetricsSnapshot::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return false;
  out << to_csv();
  return out.good();
}

Registry& Registry::instance() {
  // Leaked: instrumented code may still tick during static destruction.
  static Registry* r = new Registry();
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<RankedMutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<RankedMutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const std::uint64_t> bounds) {
  std::lock_guard<RankedMutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    auto h = bounds.empty()
                 ? std::make_unique<Histogram>()
                 : std::make_unique<Histogram>(std::vector<std::uint64_t>(
                       bounds.begin(), bounds.end()));
    it = histograms_.emplace(std::string(name), std::move(h)).first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<RankedMutex> lk(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Hist hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.counts = h->bucket_counts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<RankedMutex> lk(mu_);
  for (auto& kv : counters_) kv.second->reset();
  for (auto& kv : gauges_) kv.second->reset();
  for (auto& kv : histograms_) kv.second->reset();
}

}  // namespace dshuf::obs
