// Process-wide metrics registry: counters, gauges, and histograms
// (log2-bucketed by default, explicit bounds on request).
//
// Updates are the hot path and are lock-free: every instrument is a bundle
// of relaxed atomics, and call sites cache the instrument reference behind
// a function-local static so the name lookup happens once per site:
//
//   DSHUF_COUNTER("exchange.retries").add(out.retries);
//   DSHUF_GAUGE("data.batch_loader.queue_depth").set(depth);
//   DSHUF_HISTOGRAM_US("data.batch_loader.assemble_us").observe(dur_us);
//
// Registration and snapshotting serialise on a RankedMutex at
// LockRank::kObs — above every instrumented module's lock and below the
// logger, so a first-touch registration is legal whatever the caller
// holds (see util/ranked_mutex.hpp). Instruments live forever once
// registered (the registry is leaked at exit); references never dangle.
//
// Snapshots are ordered by name, so every export (JSON/CSV) is
// deterministic given deterministic instrument values.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/ranked_mutex.hpp"

namespace dshuf::obs {

/// Monotonic event count. add() is lock-free and thread-safe.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depth, bytes held). Signed so transient
/// dips below a racing reader's zero don't wrap.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Bucketed histogram: bucket i counts observations <= bounds[i], the
/// last (implicit) bucket counts everything above bounds.back(). Bounds
/// are fixed at registration; observe() is lock-free.
///
/// Two bucket layouts:
///   * log2 (the default, and what DSHUF_HISTOGRAM_US registers): bounds
///     are 2^0 .. 2^39, so observe() is a branch-free bit_width — no
///     binary search — and quantiles can be estimated from the counts
///     with relative error bounded by one octave (DESIGN.md §13).
///   * explicit bounds: arbitrary ascending bounds, observe() via
///     lower_bound. For instruments whose scale is known a priori.
///
/// Snapshot-during-reset semantics: every field is an independent relaxed
/// atomic, and reset() zeroes them one store at a time, so a snapshot
/// racing a reset may see a *torn* state — e.g. count() already zeroed
/// while some bucket counts are not, or sum() from the old epoch next to
/// counts from the new one. Likewise an observe() racing a reset may land
/// partially in each epoch (bucket zeroed after the increment, count
/// before it). This is by design: readers that need the
/// count==sum-of-buckets invariant must not snapshot concurrently with
/// reset() (benches reset between arms, then snapshot after joining).
/// Concurrent observe()+snapshot() without reset is always safe and every
/// access stays data-race-free (TSan-clean) — see the histogram storm
/// test.
class Histogram {
 public:
  /// Log2-bucketed histogram (bounds 2^0 .. 2^39 microseconds-ish scale;
  /// values above 2^39 land in the overflow bucket).
  Histogram();
  /// Explicit ascending bounds.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t v);

  [[nodiscard]] bool log2_buckets() const { return log2_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const {
    return bounds_;
  }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  bool log2_ = false;
};

/// The log2 bucket bounds (2^0 .. 2^39) used by default histograms.
std::span<const std::uint64_t> log2_latency_bounds_us();

/// Point-in-time copy of every registered instrument, sorted by name.
struct MetricsSnapshot {
  struct Hist {
    std::string name;
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<Hist> histograms;

  /// Deterministic JSON document (objects keyed by metric name).
  [[nodiscard]] std::string to_json() const;
  /// `kind,name,value` rows (histograms add count/sum/bucket rows).
  [[nodiscard]] std::string to_csv() const;
  /// Write to_json() / to_csv() to a file; false on I/O failure.
  bool write_json(const std::string& path) const;
  bool write_csv(const std::string& path) const;
};

class Registry {
 public:
  /// The process-wide registry (leaked at exit, like the logger).
  static Registry& instance();

  /// Find-or-create by name. The returned reference is valid for the
  /// process lifetime. Re-registering a histogram ignores `bounds`;
  /// empty bounds register a log2-bucketed histogram.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::span<const std::uint64_t> bounds = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every instrument (identities survive — cached references at
  /// call sites stay valid). For tests and bench arms.
  void reset();

 private:
  Registry() = default;

  mutable RankedMutex mu_{LockRank::kObs, "obs.registry"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace dshuf::obs

// One registry lookup per call site, lock-free updates thereafter.
#define DSHUF_COUNTER(name)                                              \
  ([]() -> ::dshuf::obs::Counter& {                                      \
    static ::dshuf::obs::Counter& c =                                    \
        ::dshuf::obs::Registry::instance().counter(name);                \
    return c;                                                            \
  }())
#define DSHUF_GAUGE(name)                                                \
  ([]() -> ::dshuf::obs::Gauge& {                                        \
    static ::dshuf::obs::Gauge& g =                                      \
        ::dshuf::obs::Registry::instance().gauge(name);                  \
    return g;                                                            \
  }())
#define DSHUF_HISTOGRAM_US(name)                                         \
  ([]() -> ::dshuf::obs::Histogram& {                                    \
    static ::dshuf::obs::Histogram& h =                                  \
        ::dshuf::obs::Registry::instance().histogram(name);              \
    return h;                                                            \
  }())
