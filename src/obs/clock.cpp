#include "obs/clock.hpp"

#include <chrono>

namespace dshuf::obs {

std::uint64_t SteadyClock::now_us() {
  using Steady = std::chrono::steady_clock;
  static const Steady::time_point origin = Steady::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Steady::now() -
                                                            origin)
          .count());
}

namespace {

std::atomic<Clock*>& clock_slot() {
  static std::atomic<Clock*> slot{nullptr};
  return slot;
}

}  // namespace

Clock& obs_clock() {
  Clock* installed = clock_slot().load(std::memory_order_acquire);
  if (installed != nullptr) return *installed;
  // Leaked on purpose: instrumented code may tick during static
  // destruction of other objects.
  static SteadyClock* fallback = new SteadyClock();
  return *fallback;
}

Clock* set_obs_clock(Clock* clock) {
  return clock_slot().exchange(clock, std::memory_order_acq_rel);
}

}  // namespace dshuf::obs
