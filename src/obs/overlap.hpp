// Exchange/compute overlap metric over a recorded trace.
//
// The paper's position is that shuffling cost must be judged against how
// much of it HIDES under training compute. This module turns a span list
// into that number:
//
//   * exchange spans — "exchange.epoch" (split-phase exchange, open from
//     post to finish), "exchange.task" (the trainer's prefetched
//     begin_epoch), and "sim.epoch.shuffle" (the sequential shuffle step);
//   * compute spans — "sim.epoch.compute" and anything under the
//     "compute." prefix (e.g. the overlap driver's "compute.batch").
//
// hidden_us is the sum, over exchange spans, of each span's intersection
// with the UNION of all compute intervals (wall-clock; tracks are
// irrelevant — an exchange hidden under another rank's compute is still
// hidden from the critical path). efficiency() = hidden / exchange: 0 for
// a strictly sequential schedule, approaching 1 when the exchange's whole
// in-flight window sits under compute. The span taxonomies never nest an
// exchange span inside another exchange span in any dshuf driver, so the
// per-span sum does not double count.
//
// tools/dshuf_trace prints this as the overlap report (and gates on it
// with --min-overlap); tests/test_overlap.cpp pins the arithmetic on
// hand-built golden traces.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace dshuf::obs {

/// Minimal span shape the metric needs — lets the trace tool feed spans
/// parsed from JSON without materialising SpanEvents.
struct NamedSpan {
  std::string_view name;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
};

struct OverlapReport {
  std::uint64_t exchange_us = 0;  ///< summed exchange span time
  std::uint64_t hidden_us = 0;    ///< exchange time under the compute union
  std::uint64_t compute_us = 0;   ///< compute union length
  std::size_t exchange_spans = 0;
  std::size_t compute_spans = 0;

  /// Fraction of exchange time hidden under compute. Reported as 1.0 when
  /// there was no exchange at all (nothing to hide).
  [[nodiscard]] double efficiency() const {
    return exchange_us == 0
               ? 1.0
               : static_cast<double>(hidden_us) /
                     static_cast<double>(exchange_us);
  }
};

[[nodiscard]] bool is_exchange_span(std::string_view name);
[[nodiscard]] bool is_compute_span(std::string_view name);

[[nodiscard]] OverlapReport compute_overlap(std::span<const NamedSpan> spans);

/// Convenience over Tracer::snapshot() output.
[[nodiscard]] OverlapReport compute_overlap(
    const std::vector<SpanEvent>& spans);

}  // namespace dshuf::obs
