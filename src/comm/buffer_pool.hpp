// Rank-local pooled buffer arena for message payloads.
//
// Same philosophy as tensor/Workspace: the exchange hot path must not pay
// a heap allocation per message, so wire buffers are recycled through a
// per-rank free list instead of being constructed fresh. A sender acquires
// a buffer, packs its frame, and moves it into the Message; the receiver
// consumes the frame in place (std::span views — no copy) and releases the
// vector back into ITS OWN rank's pool. Buffers therefore migrate between
// ranks with the traffic, which is safe because a pool is only ever
// touched by its owning rank's thread (no mutex; World::run's thread
// join orders cross-run access).
//
// acquire() takes a capacity hint so the steady state is deterministic:
// callers pass their worst-case frame size (the exchange uses
// header + quota * (id + payload high-water)), and after the first epoch
// every pooled buffer already holds that capacity — packing can never
// trigger a mid-epoch growth reallocation.
#pragma once

#include <cstddef>
#include <vector>

namespace dshuf::comm {

class BufferPool {
 public:
  /// Pop a recycled buffer (or construct one on a miss), cleared to size 0
  /// with capacity >= `reserve_hint`.
  [[nodiscard]] std::vector<std::byte> acquire(std::size_t reserve_hint = 0);

  /// Return a buffer to the free list (capacity retained). Pools keep at
  /// most kMaxFree buffers; beyond that the buffer is simply freed.
  void release(std::vector<std::byte> buf);

  /// Prewarm: ensure at least `count` free buffers of capacity >= `bytes`
  /// so the very first exchange epoch is already allocation-free.
  void reserve(std::size_t count, std::size_t bytes);

  [[nodiscard]] std::size_t free_buffers() const { return free_.size(); }
  [[nodiscard]] std::size_t free_bytes() const;

 private:
  // Generous bound on retained buffers: the exchange holds ~M in flight
  // per rank; anything past this is a leak or a workload change, and
  // hoarding it would just pin memory.
  static constexpr std::size_t kMaxFree = 256;

  std::vector<std::vector<std::byte>> free_;
};

}  // namespace dshuf::comm
