// In-process MPI-like communicator.
//
// The paper's exchange (Algorithm 1) is written against MPI point-to-point
// semantics: MPI_Isend / MPI_Irecv with tags, MPI_ANY_SOURCE, and
// wait-for-all completion. This module provides exactly those semantics
// with ranks as threads in one process:
//
//   comm::World world(M);
//   world.run([](comm::Communicator& c) {
//     auto s = c.isend(dest, tag, bytes);
//     auto r = c.irecv(comm::kAnySource, tag);
//     r.wait();                // message now in r.message()
//   });
//
// Sends are buffered ("eager"): isend deposits the message into the
// destination inbox and completes locally, matching the completion
// semantics training code can rely on from a buffered MPI_Isend. Receives
// match by (source, tag) with wildcards, in arrival order (non-overtaking
// per source, like MPI).
//
// A World can additionally run with deterministic fault injection (see
// comm/fault.hpp): install a seeded FaultPlan with set_fault_plan() and
// every point-to-point delivery may be delayed, reordered, duplicated,
// dropped, or stalled — reproducibly. Timeout-aware receives
// (Request::wait_for, Communicator::recv_for/poll/cancel) and the fence
// primitive exist so protocols can survive that regime.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "comm/buffer_pool.hpp"

namespace dshuf::comm {

class FaultPlan;
struct FaultStats;

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// A received or in-flight message.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::byte> payload;
};

namespace detail {
struct RequestState;
struct RankMailbox;
class WorldState;
}  // namespace detail

/// Handle to a pending non-blocking operation. Copyable (shared state).
class Request {
 public:
  Request() = default;

  /// True once the operation has completed (non-blocking probe).
  [[nodiscard]] bool test() const;
  /// Block until complete.
  void wait();
  /// Block until complete or `timeout` elapses; true iff completed. A
  /// false return leaves the request live — pair with Communicator::cancel
  /// to retire it (or keep waiting).
  bool wait_for(std::chrono::microseconds timeout);
  /// The received message; only valid for completed receive requests.
  [[nodiscard]] const Message& message() const;

  /// True once Communicator::cancel retired this request.
  [[nodiscard]] bool cancelled() const;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

 private:
  friend class Communicator;
  explicit Request(std::shared_ptr<detail::RequestState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::RequestState> state_;
};

/// Wait for every request in the span (MPI_Waitall).
void wait_all(std::span<Request> requests);

/// Per-rank endpoint. Not thread-safe across ranks by design: each rank's
/// thread owns its Communicator.
class Communicator {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Buffered non-blocking send. Completes immediately after enqueuing at
  /// the destination; the returned request is for interface parity.
  Request isend(int dest, int tag, std::vector<std::byte> payload);

  /// Buffered send without a completion handle. Identical delivery
  /// semantics to isend (which is buffered and completes locally anyway),
  /// minus the per-call Request allocation — the exchange hot path uses
  /// this together with pool() so a steady-state send touches no heap.
  void send(int dest, int tag, std::vector<std::byte> payload);

  /// Non-blocking receive matching (source, tag); kAnySource / kAnyTag
  /// wildcards allowed. Matches already-arrived messages first, otherwise
  /// parks until a matching message arrives.
  Request irecv(int source, int tag);

  /// Blocking receive convenience.
  Message recv(int source, int tag);

  /// Receive with a deadline: returns the message, or nullopt if nothing
  /// matching arrived within `timeout` (the posted receive is retired, so
  /// a later arrival stays in the mailbox for the next receive).
  std::optional<Message> recv_for(int source, int tag,
                                  std::chrono::microseconds timeout);

  /// Non-blocking probe-and-take: pops an already-arrived matching message
  /// without posting a receive. Used to drain stray/duplicate messages.
  std::optional<Message> poll(int source, int tag);

  /// Retire a pending (unmatched) receive request — MPI_Cancel analogue.
  /// Returns true if the request was still unmatched and is now cancelled;
  /// false if it already completed (the message is available) or it was a
  /// send request.
  bool cancel(Request& request);

  /// True when the World runs with an installed fault plan. Fault-oblivious
  /// protocols check this to refuse running over a lossy world.
  [[nodiscard]] bool fault_injection_enabled() const;

  /// Flush the fault injector's delayed-delivery queue and wait until no
  /// delivery is in flight. Call between a barrier (all sends issued) and
  /// a drain loop to make delivery globally quiescent. No-op without an
  /// installed fault plan.
  void fence_faults();

  /// Dissemination barrier across all ranks.
  void barrier();

  /// Element-wise sum allreduce over doubles (gradient-exchange analogue).
  std::vector<double> allreduce_sum(std::span<const double> contribution);

  /// Broadcast from root: root's payload is returned on every rank.
  std::vector<std::byte> bcast(int root, std::vector<std::byte> payload);

  /// Personalised all-to-all: send_per_dest[d] goes to rank d; returns the
  /// vector received from each source rank (index = source).
  std::vector<std::vector<std::byte>> alltoallv(
      std::vector<std::vector<std::byte>> send_per_dest);

  /// Gather every rank's payload at `root` (indexed by source). Non-root
  /// ranks receive an empty vector.
  std::vector<std::vector<std::byte>> gather(int root,
                                             std::vector<std::byte> payload);

  /// All ranks receive every rank's payload (indexed by source).
  std::vector<std::vector<std::byte>> allgather(std::vector<std::byte> payload);

  /// Element-wise double sum delivered only at `root`; other ranks get an
  /// empty vector.
  std::vector<double> reduce_sum(int root, std::span<const double> contribution);

  /// Root distributes per_dest[d] to rank d; returns this rank's share.
  std::vector<std::byte> scatter(int root,
                                 std::vector<std::vector<std::byte>> per_dest);

  /// This rank's payload-buffer pool (see comm/buffer_pool.hpp). Only the
  /// owning rank's thread may touch it; buffers released here came either
  /// from this pool or from a received message (buffers migrate with the
  /// traffic). Pools persist across World::run calls, so a warmed-up
  /// exchange stays allocation-free in later epochs.
  [[nodiscard]] BufferPool& pool();

 private:
  friend class World;
  Communicator(detail::WorldState* world, int rank)
      : world_(world), rank_(rank) {}

  detail::WorldState* world_;
  int rank_;
};

/// Owns the shared state and the rank threads.
class World {
 public:
  explicit World(int num_ranks);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] int size() const;

  /// Run `body` on `size()` threads, one per rank. Rethrows the first
  /// exception any rank threw (after joining all threads). May be called
  /// multiple times; mailboxes must be drained between runs (checked).
  void run(const std::function<void(Communicator&)>& body);

  /// Install a deterministic fault plan (see comm/fault.hpp): every
  /// point-to-point delivery is routed through the injector from now on.
  /// Must not be called while run() is executing. Replaces any previous
  /// plan; attempt counters restart at each run() so identical runs see
  /// identical fault schedules.
  void set_fault_plan(const FaultPlan& plan);
  /// Remove the installed fault plan (deliveries become perfect again).
  void clear_fault_plan();
  /// Injector counters (all zero when no plan is installed). Include
  /// comm/fault.hpp for the FaultStats definition.
  [[nodiscard]] FaultStats fault_stats() const;

 private:
  std::unique_ptr<detail::WorldState> state_;
};

}  // namespace dshuf::comm
