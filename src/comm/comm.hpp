// In-process MPI-like communicator.
//
// The paper's exchange (Algorithm 1) is written against MPI point-to-point
// semantics: MPI_Isend / MPI_Irecv with tags, MPI_ANY_SOURCE, and
// wait-for-all completion. This module provides exactly those semantics
// with ranks as threads in one process:
//
//   comm::World world(M);
//   world.run([](comm::Communicator& c) {
//     auto s = c.isend(dest, tag, bytes);
//     auto r = c.irecv(comm::kAnySource, tag);
//     r.wait();                // message now in r.message()
//   });
//
// Sends are buffered ("eager"): isend deposits the message into the
// destination inbox and completes locally, matching the completion
// semantics training code can rely on from a buffered MPI_Isend. Receives
// match by (source, tag) with wildcards, in arrival order (non-overtaking
// per source, like MPI).
//
// A World can additionally run with deterministic fault injection (see
// comm/fault.hpp): install a seeded FaultPlan with set_fault_plan() and
// every point-to-point delivery may be delayed, reordered, duplicated,
// dropped, or stalled — reproducibly. Timeout-aware receives
// (Request::wait_for, Communicator::recv_for/poll/cancel) and the fence
// primitive exist so protocols can survive that regime.
//
// Communicator itself is an abstract endpoint: the threaded World above is
// one backend (one OS thread per rank), and netsim::VirtualWorld is the
// other (thousands of fiber ranks over a discrete-event network model, for
// paper-scale M). Exchange code written against this interface runs on
// either unchanged; the collectives are implemented ONCE in the base class
// over barrier() + shared slots, so both backends produce bit-identical
// collective results by construction.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "comm/buffer_pool.hpp"

namespace dshuf::comm {

class FaultPlan;
struct FaultStats;

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Ranks-as-threads stops making sense well before it stops working: the
/// scheduler thrashes and every test slot in CI stalls. Worlds larger than
/// this refuse to construct and point at the event-driven backend instead.
inline constexpr int kMaxThreadedRanks = 512;

/// A received or in-flight message.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::byte> payload;
};

namespace detail {

/// Backend-specific completion state behind a Request. The threaded world
/// implements it with a mutex + condvar; the virtual world with fiber
/// suspension. Callers only ever touch it through Request.
struct RequestState {
  virtual ~RequestState() = default;
  [[nodiscard]] virtual bool test() = 0;
  virtual void wait() = 0;
  virtual bool wait_for(std::chrono::microseconds timeout) = 0;
  [[nodiscard]] virtual bool cancelled() = 0;
  [[nodiscard]] virtual const Message& message() = 0;
};

/// Shared storage for the slot-and-barrier collectives. Both backends own
/// one; the base Communicator implements every collective against it.
struct CollectiveSlots {
  std::vector<std::vector<double>> reduce;
  std::vector<std::vector<std::byte>> bcast;
  std::vector<std::vector<std::vector<std::byte>>> a2a;

  void init(int ranks) {
    reduce.resize(static_cast<std::size_t>(ranks));
    bcast.resize(static_cast<std::size_t>(ranks));
    a2a.resize(static_cast<std::size_t>(ranks));
    for (auto& row : a2a) row.resize(static_cast<std::size_t>(ranks));
  }
};

class WorldState;

}  // namespace detail

/// Handle to a pending non-blocking operation. Copyable (shared state).
class Request {
 public:
  Request() = default;

  /// True once the operation has completed (non-blocking probe).
  [[nodiscard]] bool test() const;
  /// Block until complete.
  void wait();
  /// Block until complete or `timeout` elapses; true iff completed. A
  /// false return leaves the request live — pair with Communicator::cancel
  /// to retire it (or keep waiting). Timeouts are measured on the
  /// backend's clock: wall time under the threaded world, virtual time
  /// under the event-driven one.
  bool wait_for(std::chrono::microseconds timeout);
  /// The received message; only valid for completed receive requests.
  [[nodiscard]] const Message& message() const;

  /// True once Communicator::cancel retired this request.
  [[nodiscard]] bool cancelled() const;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

 private:
  friend class Communicator;
  explicit Request(std::shared_ptr<detail::RequestState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::RequestState> state_;
};

/// Wait for every request in the span (MPI_Waitall).
void wait_all(std::span<Request> requests);

/// Per-rank endpoint (abstract). Not thread-safe across ranks by design:
/// each rank's thread/fiber owns its Communicator.
class Communicator {
 public:
  virtual ~Communicator() = default;
  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] virtual int size() const = 0;

  /// Buffered non-blocking send. Completes immediately after enqueuing at
  /// the destination; the returned request is for interface parity.
  virtual Request isend(int dest, int tag, std::vector<std::byte> payload) = 0;

  /// Buffered send without a completion handle. Identical delivery
  /// semantics to isend (which is buffered and completes locally anyway),
  /// minus the per-call Request allocation — the exchange hot path uses
  /// this together with pool() so a steady-state send touches no heap.
  virtual void send(int dest, int tag, std::vector<std::byte> payload) = 0;

  /// Non-blocking receive matching (source, tag); kAnySource / kAnyTag
  /// wildcards allowed. Matches already-arrived messages first, otherwise
  /// parks until a matching message arrives.
  virtual Request irecv(int source, int tag) = 0;

  /// Blocking receive convenience.
  virtual Message recv(int source, int tag) = 0;

  /// Receive with a deadline: returns the message, or nullopt if nothing
  /// matching arrived within `timeout` (the posted receive is retired, so
  /// a later arrival stays in the mailbox for the next receive).
  std::optional<Message> recv_for(int source, int tag,
                                  std::chrono::microseconds timeout);

  /// Non-blocking probe-and-take: pops an already-arrived matching message
  /// without posting a receive. Used to drain stray/duplicate messages.
  virtual std::optional<Message> poll(int source, int tag) = 0;

  /// Retire a pending (unmatched) receive request — MPI_Cancel analogue.
  /// Returns true if the request was still unmatched and is now cancelled;
  /// false if it already completed (the message is available) or it was a
  /// send request.
  virtual bool cancel(Request& request) = 0;

  /// True when the World runs with an installed fault plan. Fault-oblivious
  /// protocols check this to refuse running over a lossy world.
  [[nodiscard]] virtual bool fault_injection_enabled() const = 0;

  /// Flush any delayed/in-flight deliveries and wait until no delivery is
  /// in flight. Call between a barrier (all sends issued) and a drain loop
  /// to make delivery globally quiescent. No-op on the threaded world
  /// without an installed fault plan (deliveries are synchronous there).
  virtual void fence_faults() = 0;

  /// Dissemination barrier across all ranks.
  virtual void barrier() = 0;

  /// The clock that retry/timeout protocols over this communicator must
  /// use: monotonic microseconds of wall time on the threaded world,
  /// VIRTUAL microseconds on the event-driven one. Pairs with backoff().
  [[nodiscard]] virtual std::uint64_t now_us() = 0;

  /// Yield this rank for `pause`, measured on the same clock now_us()
  /// reads. The threaded world sleeps the rank's thread; the virtual world
  /// suspends the fiber and lets simulated time advance. Progress loops
  /// must back off through this (never std::this_thread::sleep_for), or
  /// virtual time would stand still beneath them.
  virtual void backoff(std::chrono::microseconds pause) = 0;

  /// Element-wise sum allreduce over doubles (gradient-exchange analogue).
  std::vector<double> allreduce_sum(std::span<const double> contribution);

  /// Broadcast from root: root's payload is returned on every rank.
  std::vector<std::byte> bcast(int root, std::vector<std::byte> payload);

  /// Personalised all-to-all: send_per_dest[d] goes to rank d; returns the
  /// vector received from each source rank (index = source).
  std::vector<std::vector<std::byte>> alltoallv(
      std::vector<std::vector<std::byte>> send_per_dest);

  /// Gather every rank's payload at `root` (indexed by source). Non-root
  /// ranks receive an empty vector.
  std::vector<std::vector<std::byte>> gather(int root,
                                             std::vector<std::byte> payload);

  /// All ranks receive every rank's payload (indexed by source).
  std::vector<std::vector<std::byte>> allgather(std::vector<std::byte> payload);

  /// Element-wise double sum delivered only at `root`; other ranks get an
  /// empty vector.
  std::vector<double> reduce_sum(int root, std::span<const double> contribution);

  /// Root distributes per_dest[d] to rank d; returns this rank's share.
  std::vector<std::byte> scatter(int root,
                                 std::vector<std::vector<std::byte>> per_dest);

  /// This rank's payload-buffer pool (see comm/buffer_pool.hpp). Only the
  /// owning rank's thread may touch it; buffers released here came either
  /// from this pool or from a received message (buffers migrate with the
  /// traffic). Pools persist across World::run calls, so a warmed-up
  /// exchange stays allocation-free in later epochs.
  [[nodiscard]] virtual BufferPool& pool() = 0;

 protected:
  explicit Communicator(int rank) : rank_(rank) {}

  /// Derived backends mint Requests through this (the ctor is private to
  /// keep the shared-state plumbing out of user hands).
  static Request make_request(std::shared_ptr<detail::RequestState> s) {
    return Request(std::move(s));
  }

  /// Backend-side view of a Request's shared state (friendship does not
  /// extend to derived backends, so they unwrap through here).
  [[nodiscard]] static const std::shared_ptr<detail::RequestState>&
  request_state(const Request& r) {
    return r.state_;
  }

  /// Storage the base-class collectives stage through. Every collective is
  /// slots + two barriers with deterministic rank-order accumulation, so
  /// any two backends agree bit-for-bit.
  [[nodiscard]] virtual detail::CollectiveSlots& collective_slots() = 0;

  int rank_;
};

/// Owns the shared state and the rank threads.
class World {
 public:
  explicit World(int num_ranks);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] int size() const;

  /// Run `body` on `size()` threads, one per rank. Rethrows the first
  /// exception any rank threw (after joining all threads). May be called
  /// multiple times; mailboxes must be drained between runs (checked).
  void run(const std::function<void(Communicator&)>& body);

  /// Install a deterministic fault plan (see comm/fault.hpp): every
  /// point-to-point delivery is routed through the injector from now on.
  /// Must not be called while run() is executing. Replaces any previous
  /// plan; attempt counters restart at each run() so identical runs see
  /// identical fault schedules.
  void set_fault_plan(const FaultPlan& plan);
  /// Remove the installed fault plan (deliveries become perfect again).
  void clear_fault_plan();
  /// Injector counters (all zero when no plan is installed). Include
  /// comm/fault.hpp for the FaultStats definition.
  [[nodiscard]] FaultStats fault_stats() const;

 private:
  std::unique_ptr<detail::WorldState> state_;
};

}  // namespace dshuf::comm
