// Deterministic fault injection for the in-process communicator.
//
// The real PLS exchange runs over imperfect interconnects: messages are
// delayed, reordered across sources, duplicated by retransmission layers,
// dropped by lossy transports, and whole nodes stall under OS jitter. The
// stock `comm::World` delivers every isend instantly and in order, so none
// of the exchange's robustness machinery is ever exercised. This module
// adds a fault layer the World consults on every point-to-point delivery:
//
//   comm::FaultSpec spec;
//   spec.drop_prob = 0.1;
//   spec.delay_prob = 0.5;
//   spec.max_delay_us = 5'000;
//   world.set_fault_plan(comm::FaultPlan(/*seed=*/42, spec));
//
// Every decision (drop? duplicate? how long a delay?) is a pure function
// of (fault seed, source, dest, tag, per-link attempt counter) via the
// deterministic Rng::fork stream derivation — re-running with the same
// seed reproduces the exact same fault schedule regardless of thread
// interleaving. Collectives (barrier/allreduce/allgather/...) use the
// World's slot-and-barrier path and are deliberately NOT faulted: they
// model the small, reliable control plane (TCP rendezvous) that real
// deployments keep alongside the lossy bulk-data plane. Loopback
// (source == dest) is likewise exempt — self-sends never cross the wire.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "comm/comm.hpp"
#include "util/ranked_mutex.hpp"
#include "util/rng.hpp"

namespace dshuf::comm {

/// Fault probabilities and magnitudes. All probabilities are per delivery
/// attempt; delays are uniform in [min_delay_us, max_delay_us].
struct FaultSpec {
  double drop_prob = 0.0;       ///< Message vanishes entirely.
  double dup_prob = 0.0;        ///< An extra copy is delivered immediately.
  double delay_prob = 0.0;      ///< Delivery is deferred by a random delay.
  std::uint32_t min_delay_us = 0;
  std::uint32_t max_delay_us = 0;
  /// Per-rank probability that ALL of the rank's sends are held back for
  /// `stall_us` from the start of the current World::run (OS-jitter model).
  double stall_prob = 0.0;
  std::uint32_t stall_us = 0;
};

/// Counters the injector keeps (snapshot via World::fault_stats()).
struct FaultStats {
  std::uint64_t submitted = 0;   ///< point-to-point sends seen
  std::uint64_t delivered = 0;   ///< copies actually deposited
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;  ///< extra copies injected
  std::uint64_t delayed = 0;
  std::uint64_t stalled = 0;     ///< deliveries deferred by a rank stall
  std::uint64_t flushed = 0;     ///< delayed messages force-delivered by fence
};

/// What the plan decided for one delivery attempt.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  std::uint32_t delay_us = 0;
};

/// Pure, seeded fault oracle. Copyable value type; decide() is const and
/// thread-safe, so concurrent senders can all consult one plan.
class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(std::uint64_t seed, const FaultSpec& spec)
      : seed_(seed), spec_(spec) {}

  /// Decision for the `attempt`-th message on the (source, dest, tag) link.
  /// Deterministic: same (seed, key) => same decision, independent of
  /// execution order.
  [[nodiscard]] FaultDecision decide(int source, int dest, int tag,
                                     std::uint64_t attempt) const;

  /// Stall window for `rank`'s sends, measured from World::run start;
  /// 0 when the rank is not stalled.
  [[nodiscard]] std::uint32_t stall_us(int rank) const;

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_ = 0;
  FaultSpec spec_;
};

/// Applies a FaultPlan to a stream of deliveries. Owns a timer thread that
/// deposits delayed messages when they come due. The World installs one of
/// these and routes every isend through submit().
class FaultInjector {
 public:
  /// `deliver` deposits a message into the destination mailbox (supplied
  /// by the World; must be callable from the timer thread).
  using DeliverFn = std::function<void(int dest, Message msg)>;

  FaultInjector(FaultPlan plan, int world_size, DeliverFn deliver);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Route one send. Called from the source rank's thread only.
  void submit(int source, int dest, Message msg);

  /// Restart the stall clock and the per-link attempt counters; called at
  /// the top of World::run so identical runs see identical schedules.
  void begin_run();

  /// Synchronously deliver every queued delayed message and wait until no
  /// delivery is in flight. Idempotent; callable from any rank. After all
  /// ranks stopped sending, a fence guarantees global delivery quiescence.
  void fence();

  /// Number of messages still queued for delayed delivery.
  [[nodiscard]] std::size_t pending() const;

  /// Wait until no delivery is mid-deposit on the timer thread. Unlike
  /// fence() this does NOT flush the queue — queued-but-undue messages
  /// stay queued (and are a leak the World's drained check reports).
  void quiesce_in_flight();

  [[nodiscard]] FaultStats stats() const;
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  struct Delayed {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq;  // FIFO tiebreak for equal deadlines
    int dest;
    Message msg;
  };
  struct Later {
    bool operator()(const Delayed& a, const Delayed& b) const {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };

  void timer_loop();
  void schedule(int dest, Message msg,
                std::chrono::steady_clock::time_point due);

  FaultPlan plan_;
  DeliverFn deliver_;

  // Per-source attempt counters keyed by (dest, tag). Each slot is touched
  // only by its own rank's thread, so no lock is needed and the counts are
  // reproducible (a rank's send sequence is deterministic). Ordered map so
  // no observable behaviour (stats drains, debug dumps, future snapshots)
  // can ever depend on hash-bucket iteration order — fault-schedule replay
  // must be a pure function of the seed.
  std::vector<std::map<std::uint64_t, std::uint64_t>> attempts_;

  mutable RankedMutex mu_{LockRank::kFault, "comm.fault"};
  std::condition_variable_any cv_;
  std::priority_queue<Delayed, std::vector<Delayed>, Later> queue_;
  std::uint64_t next_seq_ = 0;
  std::size_t in_flight_ = 0;  // popped but not yet deposited
  bool stop_ = false;
  std::chrono::steady_clock::time_point run_start_;
  FaultStats stats_;

  std::thread timer_;
};

}  // namespace dshuf::comm
