#include "comm/buffer_pool.hpp"

#include "obs/metrics.hpp"

namespace dshuf::comm {

std::vector<std::byte> BufferPool::acquire(std::size_t reserve_hint) {
  DSHUF_COUNTER("comm.pool.acquires").add();
  std::vector<std::byte> buf;
  if (!free_.empty()) {
    buf = std::move(free_.back());
    free_.pop_back();
    DSHUF_GAUGE("comm.pool.buffers").sub(1);
    DSHUF_GAUGE("comm.pool.bytes")
        .sub(static_cast<std::int64_t>(buf.capacity()));
  } else {
    DSHUF_COUNTER("comm.pool.misses").add();
  }
  buf.clear();
  if (buf.capacity() < reserve_hint) buf.reserve(reserve_hint);
  return buf;
}

void BufferPool::release(std::vector<std::byte> buf) {
  if (free_.size() >= kMaxFree) return;  // drop: bounded retention
  DSHUF_GAUGE("comm.pool.buffers").add(1);
  DSHUF_GAUGE("comm.pool.bytes")
      .add(static_cast<std::int64_t>(buf.capacity()));
  buf.clear();
  free_.push_back(std::move(buf));
}

void BufferPool::reserve(std::size_t count, std::size_t bytes) {
  for (auto& buf : free_) {
    if (buf.capacity() < bytes) {
      const std::size_t before = buf.capacity();
      buf.reserve(bytes);
      DSHUF_GAUGE("comm.pool.bytes")
          .add(static_cast<std::int64_t>(buf.capacity() - before));
    }
  }
  while (free_.size() < count && free_.size() < kMaxFree) {
    std::vector<std::byte> buf;
    buf.reserve(bytes);
    DSHUF_GAUGE("comm.pool.buffers").add(1);
    DSHUF_GAUGE("comm.pool.bytes")
        .add(static_cast<std::int64_t>(buf.capacity()));
    free_.push_back(std::move(buf));
  }
}

std::size_t BufferPool::free_bytes() const {
  std::size_t n = 0;
  for (const auto& buf : free_) n += buf.capacity();
  return n;
}

}  // namespace dshuf::comm
