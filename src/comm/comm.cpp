#include "comm/comm.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "comm/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/ranked_mutex.hpp"
#include "util/ring_queue.hpp"

namespace dshuf::comm {

namespace detail {

/// Threaded-world request state: completion signalled across rank threads
/// with a mutex + condvar pair.
struct ThreadedRequestState final : RequestState {
  RankedMutex mu{LockRank::kCommRequest, "comm.request"};
  std::condition_variable_any cv;
  bool done = false;
  bool cancelled_flag = false;
  Message msg;
  // Abort flag shared with the world so waiters wake when a peer throws.
  std::shared_ptr<std::atomic<bool>> aborted;

  void complete(Message m) {
    {
      std::lock_guard<RankedMutex> lk(mu);
      msg = std::move(m);
      done = true;
    }
    cv.notify_all();
  }

  bool test() override {
    std::lock_guard<RankedMutex> lk(mu);
    return done;
  }

  void wait() override {
    std::unique_lock<RankedMutex> lk(mu);
    // Poll with a timeout so an aborted world (peer threw) wakes us even
    // if the notification raced our wait registration.
    while (!done) {
      DSHUF_CHECK(!cancelled_flag, "wait() on a cancelled request");
      DSHUF_CHECK(!(aborted && aborted->load(std::memory_order_seq_cst)),
                  "world aborted while waiting on a request");
      cv.wait_for(lk, std::chrono::milliseconds(50));
    }
  }

  bool wait_for(std::chrono::microseconds timeout) override {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::unique_lock<RankedMutex> lk(mu);
    while (!done) {
      DSHUF_CHECK(!cancelled_flag, "wait_for() on a cancelled request");
      DSHUF_CHECK(!(aborted && aborted->load(std::memory_order_seq_cst)),
                  "world aborted while waiting on a request");
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      // Cap each sleep so an abort can never be missed for long.
      const auto slice = std::min<std::chrono::steady_clock::duration>(
          deadline - now, std::chrono::milliseconds(50));
      cv.wait_for(lk, slice);
    }
    return true;
  }

  bool cancelled() override {
    std::lock_guard<RankedMutex> lk(mu);
    return cancelled_flag;
  }

  const Message& message() override {
    std::lock_guard<RankedMutex> lk(mu);
    DSHUF_CHECK(done, "message() before completion");
    return msg;
  }
};

struct PendingRecv {
  int source = kAnySource;
  int tag = kAnyTag;
  std::shared_ptr<ThreadedRequestState> state;
};

// Queues are RingQueues, not deques: libstdc++'s deque churns heap nodes
// under steady push/pop, which would break the zero-allocation exchange
// steady state. `cv` wakes blocking recv() when a message is queued.
struct RankMailbox {
  RankedMutex mu{LockRank::kCommMailbox, "comm.mailbox"};
  std::condition_variable_any cv;
  RingQueue<Message> arrived;
  RingQueue<PendingRecv> pending;
};

class WorldState {
 public:
  explicit WorldState(int num_ranks)
      : size_(num_ranks),
        mailboxes_(static_cast<std::size_t>(num_ranks)),
        pools_(static_cast<std::size_t>(num_ranks)),
        aborted_(std::make_shared<std::atomic<bool>>(false)) {
    DSHUF_CHECK_GT(num_ranks, 0, "world needs at least one rank");
    DSHUF_CHECK_LE(num_ranks, kMaxThreadedRanks,
                   "a threaded World of "
                       << num_ranks << " ranks would oversubscribe the host "
                       << "(one OS thread per rank); run paper-scale M on "
                       << "the event-driven netsim::VirtualWorld instead");
    slots_.init(num_ranks);
  }

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] RankMailbox& mailbox(int rank) {
    DSHUF_CHECK(rank >= 0 && rank < size_, "rank out of range: " << rank);
    return mailboxes_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] BufferPool& pool(int rank) {
    DSHUF_CHECK(rank >= 0 && rank < size_, "rank out of range: " << rank);
    return pools_[static_cast<std::size_t>(rank)];
  }

  /// Final delivery into `dest`'s mailbox: match a parked receive or queue
  /// the message. Called from sender threads and the injector timer thread.
  void deposit(int dest, Message msg);

  /// Route a send: through the fault injector when one is installed,
  /// otherwise straight to deposit().
  void send(int source, int dest, Message msg) {
    if (injector_) {
      injector_->submit(source, dest, std::move(msg));
    } else {
      deposit(dest, std::move(msg));
    }
  }

  void set_fault_plan(const FaultPlan& plan) {
    DSHUF_CHECK(!running_, "cannot change the fault plan mid-run");
    injector_ = std::make_unique<FaultInjector>(
        plan, size_, [this](int dest, Message msg) {
          deposit(dest, std::move(msg));
        });
  }
  void clear_fault_plan() {
    DSHUF_CHECK(!running_, "cannot change the fault plan mid-run");
    injector_.reset();
  }
  [[nodiscard]] bool has_fault_plan() const { return injector_ != nullptr; }
  void fence_faults() {
    if (injector_) injector_->fence();
  }
  [[nodiscard]] FaultStats fault_stats() const {
    return injector_ ? injector_->stats() : FaultStats{};
  }

  void begin_run() {
    running_ = true;
    if (injector_) injector_->begin_run();
  }
  void end_run() { running_ = false; }

  std::shared_ptr<std::atomic<bool>> aborted_flag() { return aborted_; }
  [[nodiscard]] bool is_aborted() const {
    return aborted_->load(std::memory_order_seq_cst);
  }
  void abort() {
    {
      // The flag must flip under barrier_mu_: a rank between evaluating
      // the barrier predicate and blocking would otherwise miss this
      // notify and sleep forever (the barrier wait, unlike request/recv
      // waits, has no poll timeout to rescue it).
      std::lock_guard<RankedMutex> lk(barrier_mu_);
      aborted_->store(true, std::memory_order_seq_cst);
    }
    barrier_cv_.notify_all();
    // Wake any parked receive requests and any blocking recv() waiter.
    for (auto& mb : mailboxes_) {
      {
        std::lock_guard<RankedMutex> lk(mb.mu);
        for (std::size_t i = 0; i < mb.pending.size(); ++i) {
          mb.pending[i].state->cv.notify_all();
        }
      }
      mb.cv.notify_all();
    }
  }
  void reset_abort() { aborted_->store(false, std::memory_order_seq_cst); }

  void barrier() {
    std::unique_lock<RankedMutex> lk(barrier_mu_);
    const std::uint64_t gen = barrier_gen_;
    if (++barrier_count_ == size_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      lk.unlock();
      barrier_cv_.notify_all();
      return;
    }
    barrier_cv_.wait(lk, [&] { return barrier_gen_ != gen || is_aborted(); });
    DSHUF_CHECK(!is_aborted(), "world aborted while in barrier");
  }

  CollectiveSlots& slots() { return slots_; }

  /// Verify clean shutdown: no stray messages or dangling receives, and no
  /// message still parked inside the fault injector.
  void check_drained() {
    // The timer thread may still be mid-deposit for a message a rank
    // already consumed; settle that before judging leftovers.
    if (injector_) injector_->quiesce_in_flight();
    DSHUF_CHECK(!injector_ || injector_->pending() == 0,
                "world finished with "
                    << (injector_ ? injector_->pending() : 0)
                    << " message(s) still delayed in the fault injector "
                       "(fence_faults() + drain before returning)");
    for (int r = 0; r < size_; ++r) {
      auto& mb = mailbox(r);
      std::lock_guard<RankedMutex> lk(mb.mu);
      DSHUF_CHECK(mb.arrived.empty(),
                  "rank " << r << " finished with " << mb.arrived.size()
                          << " unreceived message(s)");
      DSHUF_CHECK(mb.pending.empty(),
                  "rank " << r << " finished with " << mb.pending.size()
                          << " unmatched irecv(s)");
    }
  }

 private:
  int size_;
  std::vector<RankMailbox> mailboxes_;
  std::vector<BufferPool> pools_;

  RankedMutex barrier_mu_{LockRank::kCommBarrier, "comm.barrier"};
  std::condition_variable_any barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;

  CollectiveSlots slots_;

  std::shared_ptr<std::atomic<bool>> aborted_;
  std::unique_ptr<FaultInjector> injector_;
  bool running_ = false;
};

namespace {

bool matches(const PendingRecv& want, int source, int tag) {
  return (want.source == kAnySource || want.source == source) &&
         (want.tag == kAnyTag || want.tag == tag);
}

bool matches_msg(int want_source, int want_tag, const Message& m) {
  return (want_source == kAnySource || want_source == m.source) &&
         (want_tag == kAnyTag || want_tag == m.tag);
}

}  // namespace

void WorldState::deposit(int dest, Message msg) {
  auto& mb = mailbox(dest);
  std::shared_ptr<ThreadedRequestState> matched;
  {
    std::lock_guard<RankedMutex> lk(mb.mu);
    for (std::size_t i = 0; i < mb.pending.size(); ++i) {
      if (matches(mb.pending[i], msg.source, msg.tag)) {
        matched = mb.pending.take(i).state;
        break;
      }
    }
    if (!matched) mb.arrived.push_back(std::move(msg));
  }
  if (matched) {
    matched->complete(std::move(msg));
  } else {
    mb.cv.notify_all();  // wake a blocking recv() scanning `arrived`
  }
}

/// The ranks-as-threads endpoint over WorldState. Internal to this TU: the
/// only way to get one is through World::run.
class ThreadedCommunicator final : public Communicator {
 public:
  ThreadedCommunicator(WorldState* world, int rank)
      : Communicator(rank), world_(world) {}

  [[nodiscard]] int size() const override { return world_->size(); }

  Request isend(int dest, int tag, std::vector<std::byte> payload) override {
    // Buffered send: locally complete (even a dropped message "completes"
    // — exactly the guarantee a buffered MPI_Isend gives over a lossy
    // fabric).
    auto state = std::make_shared<ThreadedRequestState>();
    state->aborted = world_->aborted_flag();
    send(dest, tag, std::move(payload));
    state->done = true;
    return make_request(std::move(state));
  }

  void send(int dest, int tag, std::vector<std::byte> payload) override {
    DSHUF_CHECK(dest >= 0 && dest < size(), "send destination out of range");
    Message msg;
    msg.source = rank_;
    msg.tag = tag;
    msg.payload = std::move(payload);
    DSHUF_COUNTER("comm.isend").add();
    DSHUF_COUNTER("comm.bytes_sent").add(msg.payload.size());
    world_->send(rank_, dest, std::move(msg));
  }

  Request irecv(int source, int tag) override {
    DSHUF_CHECK(source == kAnySource || (source >= 0 && source < size()),
                "irecv source out of range");
    auto state = std::make_shared<ThreadedRequestState>();
    state->aborted = world_->aborted_flag();

    auto& mb = world_->mailbox(rank_);
    bool completed = false;
    Message found;
    {
      std::lock_guard<RankedMutex> lk(mb.mu);
      for (std::size_t i = 0; i < mb.arrived.size(); ++i) {
        if (matches_msg(source, tag, mb.arrived[i])) {
          found = mb.arrived.take(i);
          completed = true;
          break;
        }
      }
      if (!completed) {
        mb.pending.push_back(PendingRecv{source, tag, state});
      }
    }
    if (completed) state->complete(std::move(found));
    return make_request(std::move(state));
  }

  Message recv(int source, int tag) override {
    // Scan-and-wait over the mailbox directly, not irecv + wait: a
    // blocking receive needs no Request object, so the exchange's steady
    // state can receive without allocating. Earlier-posted irecvs still
    // win — deposit matches parked receives before queueing into
    // `arrived`.
    DSHUF_CHECK(source == kAnySource || (source >= 0 && source < size()),
                "recv source out of range");
    auto& mb = world_->mailbox(rank_);
    std::unique_lock<RankedMutex> lk(mb.mu);
    for (;;) {
      for (std::size_t i = 0; i < mb.arrived.size(); ++i) {
        if (matches_msg(source, tag, mb.arrived[i])) {
          return mb.arrived.take(i);
        }
      }
      DSHUF_CHECK(!world_->is_aborted(), "world aborted while in recv");
      // Poll with a timeout so an aborted world (peer threw) wakes us even
      // if the notification raced our wait registration.
      mb.cv.wait_for(lk, std::chrono::milliseconds(50));
    }
  }

  std::optional<Message> poll(int source, int tag) override {
    auto& mb = world_->mailbox(rank_);
    std::lock_guard<RankedMutex> lk(mb.mu);
    for (std::size_t i = 0; i < mb.arrived.size(); ++i) {
      if (matches_msg(source, tag, mb.arrived[i])) {
        return mb.arrived.take(i);
      }
    }
    return std::nullopt;
  }

  bool cancel(Request& request) override {
    DSHUF_CHECK(request.valid(), "cancel() on an empty request");
    auto& mb = world_->mailbox(rank_);
    std::lock_guard<RankedMutex> lk(mb.mu);
    for (std::size_t i = 0; i < mb.pending.size(); ++i) {
      if (mb.pending[i].state == request_state(request)) {
        auto state = mb.pending.take(i).state;
        std::lock_guard<RankedMutex> slk(state->mu);
        state->cancelled_flag = true;
        return true;
      }
    }
    return false;  // already matched (or a send request) — nothing to cancel
  }

  [[nodiscard]] BufferPool& pool() override { return world_->pool(rank_); }

  [[nodiscard]] bool fault_injection_enabled() const override {
    return world_->has_fault_plan();
  }

  void fence_faults() override { world_->fence_faults(); }

  void barrier() override {
    DSHUF_COUNTER("comm.barrier").add();
    world_->barrier();
  }

  [[nodiscard]] std::uint64_t now_us() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void backoff(std::chrono::microseconds pause) override {
    std::this_thread::sleep_for(pause);
  }

 protected:
  [[nodiscard]] detail::CollectiveSlots& collective_slots() override {
    return world_->slots();
  }

 private:
  WorldState* world_;
};

}  // namespace detail

bool Request::test() const {
  DSHUF_CHECK(state_ != nullptr, "test() on an empty request");
  return state_->test();
}

void Request::wait() {
  DSHUF_CHECK(state_ != nullptr, "wait() on an empty request");
  state_->wait();
}

bool Request::wait_for(std::chrono::microseconds timeout) {
  DSHUF_CHECK(state_ != nullptr, "wait_for() on an empty request");
  return state_->wait_for(timeout);
}

bool Request::cancelled() const {
  DSHUF_CHECK(state_ != nullptr, "cancelled() on an empty request");
  return state_->cancelled();
}

const Message& Request::message() const {
  DSHUF_CHECK(state_ != nullptr, "message() on an empty request");
  return state_->message();
}

void wait_all(std::span<Request> requests) {
  for (auto& r : requests) r.wait();
}

std::optional<Message> Communicator::recv_for(
    int source, int tag, std::chrono::microseconds timeout) {
  Request r = irecv(source, tag);
  if (r.wait_for(timeout)) return r.message();
  if (cancel(r)) return std::nullopt;
  // The message arrived between the timeout and the cancel: take it.
  r.wait();
  return r.message();
}

std::vector<double> Communicator::allreduce_sum(
    std::span<const double> contribution) {
  auto& slots = collective_slots().reduce;
  slots[static_cast<std::size_t>(rank_)].assign(contribution.begin(),
                                                contribution.end());
  barrier();
  // Every rank computes the sum itself (deterministic rank-order
  // accumulation, so all ranks agree bit-for-bit).
  std::vector<double> out(contribution.size(), 0.0);
  for (int r = 0; r < size(); ++r) {
    const auto& c = slots[static_cast<std::size_t>(r)];
    DSHUF_CHECK_EQ(c.size(), out.size(),
                   "allreduce contributions must have equal length");
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += c[i];
  }
  barrier();  // slots reusable after everyone has read
  return out;
}

std::vector<std::byte> Communicator::bcast(int root,
                                           std::vector<std::byte> payload) {
  DSHUF_CHECK(root >= 0 && root < size(), "bcast root out of range");
  auto& slots = collective_slots().bcast;
  if (rank_ == root) {
    slots[static_cast<std::size_t>(root)] = std::move(payload);
  }
  barrier();
  std::vector<std::byte> out = slots[static_cast<std::size_t>(root)];
  barrier();
  return out;
}

std::vector<std::vector<std::byte>> Communicator::alltoallv(
    std::vector<std::vector<std::byte>> send_per_dest) {
  DSHUF_CHECK_EQ(send_per_dest.size(), static_cast<std::size_t>(size()),
                 "alltoallv needs one buffer per destination");
  auto& slots = collective_slots().a2a;
  slots[static_cast<std::size_t>(rank_)] = std::move(send_per_dest);
  barrier();
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(size()));
  for (int src = 0; src < size(); ++src) {
    out[static_cast<std::size_t>(src)] =
        slots[static_cast<std::size_t>(src)][static_cast<std::size_t>(rank_)];
  }
  barrier();
  return out;
}

std::vector<std::vector<std::byte>> Communicator::gather(
    int root, std::vector<std::byte> payload) {
  DSHUF_CHECK(root >= 0 && root < size(), "gather root out of range");
  // Express over alltoallv: everyone sends to root only.
  std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(size()));
  send[static_cast<std::size_t>(root)] = std::move(payload);
  auto received = alltoallv(std::move(send));
  if (rank_ != root) return {};
  return received;
}

std::vector<std::vector<std::byte>> Communicator::allgather(
    std::vector<std::byte> payload) {
  std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(size()));
  for (auto& s : send) s = payload;
  return alltoallv(std::move(send));
}

std::vector<double> Communicator::reduce_sum(
    int root, std::span<const double> contribution) {
  DSHUF_CHECK(root >= 0 && root < size(), "reduce root out of range");
  auto sum = allreduce_sum(contribution);
  if (rank_ != root) return {};
  return sum;
}

std::vector<std::byte> Communicator::scatter(
    int root, std::vector<std::vector<std::byte>> per_dest) {
  DSHUF_CHECK(root >= 0 && root < size(), "scatter root out of range");
  std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(size()));
  if (rank_ == root) {
    DSHUF_CHECK_EQ(per_dest.size(), static_cast<std::size_t>(size()),
                   "scatter needs one payload per destination");
    send = std::move(per_dest);
  }
  auto received = alltoallv(std::move(send));
  return std::move(received[static_cast<std::size_t>(root)]);
}

World::World(int num_ranks)
    : state_(std::make_unique<detail::WorldState>(num_ranks)) {}

World::~World() = default;

int World::size() const { return state_->size(); }

void World::set_fault_plan(const FaultPlan& plan) {
  state_->set_fault_plan(plan);
}

void World::clear_fault_plan() { state_->clear_fault_plan(); }

FaultStats World::fault_stats() const { return state_->fault_stats(); }

void World::run(const std::function<void(Communicator&)>& body) {
  state_->reset_abort();
  state_->begin_run();
  const int n = state_->size();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));

  for (int r = 0; r < n; ++r) {
    threads.emplace_back([this, r, &body, &errors] {
      try {
        // Rank threads own trace lane r; naming the lane up front means
        // every World body (not just exchanges) renders as "rank r" in
        // merged Chrome traces.
        obs::Tracer::set_thread_track(r);
        if (obs::Tracer::instance().enabled()) {
          obs::Tracer::set_thread_name("rank " + std::to_string(r));
        }
        detail::ThreadedCommunicator c(state_.get(), r);
        body(c);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        state_->abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  state_->end_run();

  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  state_->check_drained();
}

}  // namespace dshuf::comm
