#include "comm/fault.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"

// The DSHUF_COUNTER("comm.fault.*") calls below mirror FaultStats in
// lockstep at every ++stats_ site; tests assert exact equality between
// the struct and the registry.

namespace dshuf::comm {

namespace {

// Domain-separation tags so the message stream and the stall stream of one
// fault seed never alias.
constexpr std::uint64_t kMessageDomain = 0xD0D0;
constexpr std::uint64_t kStallDomain = 0x57A1;

std::uint64_t link_key(int dest, int tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dest)) << 32) |
         static_cast<std::uint32_t>(tag);
}

}  // namespace

FaultDecision FaultPlan::decide(int source, int dest, int tag,
                                std::uint64_t attempt) const {
  FaultDecision d;
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source)) << 32) |
      static_cast<std::uint32_t>(dest);
  Rng rng = Rng(seed_).fork(kMessageDomain, pair).fork(
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)), attempt);
  // Draw all three decisions unconditionally so the stream layout is
  // independent of the spec's probabilities.
  const double u_drop = rng.uniform();
  const double u_dup = rng.uniform();
  const double u_delay = rng.uniform();
  d.drop = u_drop < spec_.drop_prob;
  d.duplicate = !d.drop && u_dup < spec_.dup_prob;
  if (!d.drop && u_delay < spec_.delay_prob &&
      spec_.max_delay_us >= spec_.min_delay_us) {
    const std::uint64_t span =
        static_cast<std::uint64_t>(spec_.max_delay_us - spec_.min_delay_us) +
        1;
    d.delay_us = spec_.min_delay_us +
                 static_cast<std::uint32_t>(rng.uniform_u64(span));
  }
  return d;
}

std::uint32_t FaultPlan::stall_us(int rank) const {
  if (spec_.stall_prob <= 0.0 || spec_.stall_us == 0) return 0;
  Rng rng = Rng(seed_).fork(kStallDomain,
                            static_cast<std::uint64_t>(
                                static_cast<std::uint32_t>(rank)));
  return rng.uniform() < spec_.stall_prob ? spec_.stall_us : 0;
}

FaultInjector::FaultInjector(FaultPlan plan, int world_size, DeliverFn deliver)
    : plan_(plan),
      deliver_(std::move(deliver)),
      attempts_(static_cast<std::size_t>(world_size)),
      run_start_(std::chrono::steady_clock::now()) {
  DSHUF_CHECK(deliver_ != nullptr, "fault injector needs a deliver callback");
  timer_ = std::thread([this] { timer_loop(); });
}

FaultInjector::~FaultInjector() {
  {
    std::lock_guard<RankedMutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  timer_.join();
}

void FaultInjector::begin_run() {
  std::lock_guard<RankedMutex> lk(mu_);
  run_start_ = std::chrono::steady_clock::now();
  for (auto& per_rank : attempts_) per_rank.clear();
}

void FaultInjector::submit(int source, int dest, Message msg) {
  // Loopback never crosses the wire: deliver faithfully.
  if (source == dest) {
    {
      std::lock_guard<RankedMutex> lk(mu_);
      ++stats_.submitted;
      ++stats_.delivered;
      DSHUF_COUNTER("comm.fault.submitted").add();
      DSHUF_COUNTER("comm.fault.delivered").add();
    }
    deliver_(dest, std::move(msg));
    return;
  }

  const std::uint64_t attempt =
      attempts_[static_cast<std::size_t>(source)][link_key(dest, msg.tag)]++;
  const FaultDecision d = plan_.decide(source, dest, msg.tag, attempt);

  // A stalled source holds every send until its stall window (measured from
  // run start) elapses; the hold stacks with any per-message delay.
  std::uint32_t stall_extra_us = 0;
  const std::uint32_t stall = plan_.stall_us(source);
  std::chrono::steady_clock::time_point start;
  {
    std::lock_guard<RankedMutex> lk(mu_);
    ++stats_.submitted;
    DSHUF_COUNTER("comm.fault.submitted").add();
    start = run_start_;
  }
  if (stall > 0) {
    const auto stall_end = start + std::chrono::microseconds(stall);
    const auto now = std::chrono::steady_clock::now();
    if (now < stall_end) {
      stall_extra_us = static_cast<std::uint32_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(stall_end -
                                                                now)
              .count());
    }
  }

  if (d.drop) {
    std::lock_guard<RankedMutex> lk(mu_);
    ++stats_.dropped;
    DSHUF_COUNTER("comm.fault.dropped").add();
    return;
  }
  if (d.duplicate) {
    {
      std::lock_guard<RankedMutex> lk(mu_);
      ++stats_.duplicated;
      ++stats_.delivered;
      DSHUF_COUNTER("comm.fault.duplicated").add();
      DSHUF_COUNTER("comm.fault.delivered").add();
    }
    deliver_(dest, msg);  // extra copy, delivered immediately
  }

  const std::uint64_t total_delay_us =
      static_cast<std::uint64_t>(d.delay_us) + stall_extra_us;
  if (total_delay_us == 0) {
    {
      std::lock_guard<RankedMutex> lk(mu_);
      ++stats_.delivered;
      DSHUF_COUNTER("comm.fault.delivered").add();
    }
    deliver_(dest, std::move(msg));
    return;
  }
  {
    std::lock_guard<RankedMutex> lk(mu_);
    if (d.delay_us > 0) {
      ++stats_.delayed;
      DSHUF_COUNTER("comm.fault.delayed").add();
    }
    if (stall_extra_us > 0) {
      ++stats_.stalled;
      DSHUF_COUNTER("comm.fault.stalled").add();
    }
  }
  schedule(dest, std::move(msg),
           std::chrono::steady_clock::now() +
               std::chrono::microseconds(total_delay_us));
}

void FaultInjector::schedule(int dest, Message msg,
                             std::chrono::steady_clock::time_point due) {
  {
    std::lock_guard<RankedMutex> lk(mu_);
    queue_.push(Delayed{due, next_seq_++, dest, std::move(msg)});
  }
  cv_.notify_all();
}

void FaultInjector::timer_loop() {
  std::unique_lock<RankedMutex> lk(mu_);
  while (true) {
    if (stop_) return;
    if (queue_.empty()) {
      cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      continue;
    }
    const auto due = queue_.top().due;
    const auto now = std::chrono::steady_clock::now();
    if (now < due) {
      cv_.wait_until(lk, due);
      continue;
    }
    Delayed item = std::move(const_cast<Delayed&>(queue_.top()));
    queue_.pop();
    ++in_flight_;
    lk.unlock();
    deliver_(item.dest, std::move(item.msg));
    lk.lock();
    ++stats_.delivered;
    DSHUF_COUNTER("comm.fault.delivered").add();
    --in_flight_;
    cv_.notify_all();  // wake fence() waiters
  }
}

void FaultInjector::fence() {
  std::vector<Delayed> grabbed;
  {
    std::unique_lock<RankedMutex> lk(mu_);
    while (!queue_.empty()) {
      grabbed.push_back(std::move(const_cast<Delayed&>(queue_.top())));
      queue_.pop();
    }
    // Count the grabbed batch as in flight while it is delivered outside
    // the lock: a concurrent fence() must not observe queue_.empty() &&
    // in_flight_ == 0 and return before these deposits land.
    in_flight_ += grabbed.size();
  }
  for (auto& item : grabbed) {
    deliver_(item.dest, std::move(item.msg));
    {
      std::lock_guard<RankedMutex> lk(mu_);
      ++stats_.flushed;
      ++stats_.delivered;
      DSHUF_COUNTER("comm.fault.flushed").add();
      DSHUF_COUNTER("comm.fault.delivered").add();
      --in_flight_;
    }
    cv_.notify_all();
  }
  // Wait until no delivery is outstanding anywhere — neither on the timer
  // thread nor in another rank's concurrent fence() — and nothing new is
  // queued. After this, delivery is globally quiescent.
  std::unique_lock<RankedMutex> lk(mu_);
  cv_.wait(lk, [&] { return in_flight_ == 0 && queue_.empty(); });
}

void FaultInjector::quiesce_in_flight() {
  std::unique_lock<RankedMutex> lk(mu_);
  cv_.wait(lk, [&] { return in_flight_ == 0; });
}

std::size_t FaultInjector::pending() const {
  std::lock_guard<RankedMutex> lk(mu_);
  return queue_.size() + in_flight_;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<RankedMutex> lk(mu_);
  return stats_;
}

}  // namespace dshuf::comm
