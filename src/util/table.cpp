#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace dshuf {

TextTable& TextTable::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
  return *this;
}

TextTable& TextTable::row(std::vector<std::string> cells) {
  if (!header_.empty()) {
    DSHUF_CHECK_EQ(cells.size(), header_.size(),
                   "row width must match header width in table " << title_);
  }
  rows_.push_back(std::move(cells));
  return *this;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[i])) << cell
         << " | ";
    }
    os << '\n';
  };
  auto print_sep = [&] {
    os << "+";
    for (auto w : widths) os << std::string(w + 2, '-') << "-+";
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  print_sep();
  if (!header_.empty()) {
    print_row(header_);
    print_sep();
  }
  for (const auto& r : rows_) print_row(r);
  print_sep();
}

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

bool TextTable::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  auto write_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) f << ',';
      f << csv_escape(cells[i]);
    }
    f << '\n';
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& r : rows_) write_row(r);
  return static_cast<bool>(f);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

std::string fmt_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(bytes < 10 ? 2 : 1) << bytes << ' '
      << kUnits[unit];
  return oss.str();
}

}  // namespace dshuf
