#include "util/rng.hpp"

#include <cmath>
#include <numeric>

namespace dshuf {

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

std::vector<std::uint32_t> Rng::permutation(std::size_t n) {
  std::vector<std::uint32_t> p;
  permutation_into(n, p);
  return p;
}

void Rng::permutation_into(std::size_t n, std::vector<std::uint32_t>& out) {
  out.resize(n);
  std::iota(out.begin(), out.end(), 0U);
  shuffle(out);
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::size_t n,
                                                           std::size_t k) {
  DSHUF_CHECK_LE(k, n, "cannot sample more elements than the population");
  // Partial Fisher–Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<std::uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0U);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_u64(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace dshuf
