// Numeric helpers used by the shuffling-error analysis (Section IV-B of the
// paper) and elsewhere: log-factorials via lgamma, log-falling-factorials,
// stable exp-of-log-difference, and basic summary statistics.
#pragma once

#include <cstdint>
#include <vector>

namespace dshuf {

/// ln(n!) computed via lgamma(n + 1); exact enough for ratio arithmetic on
/// factorials far beyond what fits in floating point directly.
double log_factorial(double n);

/// ln of the falling factorial n * (n-1) * ... * (n-k+1) = n!/(n-k)!.
/// Requires 0 <= k <= n.
double log_falling_factorial(double n, double k);

/// exp(a - b) computed with care for large magnitudes: returns 0 when
/// a - b underflows, and saturates instead of producing inf for overflow.
double exp_log_ratio(double log_num, double log_den);

/// Simple summary statistics over a sample.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

Summary summarize(const std::vector<double>& xs);

/// Arithmetic mean; returns 0 for an empty vector.
double mean_of(const std::vector<double>& xs);

}  // namespace dshuf
