// Deterministic random number generation.
//
// Everything in dshuf that involves randomness draws from Rng, a
// xoshiro256** generator seeded through SplitMix64. Independent streams
// (per rank, per epoch) are derived with Rng::fork(tag...), which hashes
// the tags into the seed so that e.g. worker 7 at epoch 12 always sees the
// same stream regardless of execution order. This mirrors the paper's
// requirement that "all workers use the same random seed" for the
// destination permutation of Algorithm 1.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace dshuf {

/// SplitMix64: seed expander / hash mixer (public-domain algorithm by
/// Sebastiano Vigna). Used to initialise xoshiro state and to derive
/// sub-stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** PRNG (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
/// Satisfies UniformRandomBitGenerator so it composes with <random> if
/// needed, but dshuf code uses the member helpers for portability of
/// sequences across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 as recommended by the
  /// xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x8E5BULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child stream from this generator's seed lineage
  /// and the given tags. Deterministic: same parent seed + same tags =>
  /// same child stream. Does NOT advance this generator.
  [[nodiscard]] Rng fork(std::uint64_t tag0, std::uint64_t tag1 = 0,
                         std::uint64_t tag2 = 0) const {
    SplitMix64 sm(state_[0] ^ (state_[3] * 0x9E3779B97F4A7C15ULL));
    std::uint64_t s = sm.next();
    s ^= SplitMix64(tag0 + 0x1ULL).next();
    s ^= SplitMix64(tag1 + 0x2B7E151628AED2A6ULL).next();
    s ^= SplitMix64(tag2 + 0x452821E638D01377ULL).next();
    return Rng(s);
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method: unbiased and fast.
  std::uint64_t uniform_u64(std::uint64_t bound) {
    DSHUF_CHECK_GT(bound, 0ULL, "uniform_u64 bound must be positive");
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    DSHUF_CHECK_LE(lo, hi, "uniform_int empty range");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1ULL;
    return lo + static_cast<std::int64_t>(uniform_u64(span));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniform_float(float lo, float hi) {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Standard normal via Box–Muller (cached second value).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_u64(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Random permutation of [0, n).
  std::vector<std::uint32_t> permutation(std::size_t n);

  /// Random permutation of [0, n) written into `out` (resized in place, so
  /// steady-state callers reuse capacity). Draws the exact same sequence as
  /// permutation(): iota followed by the Fisher–Yates shuffle above.
  void permutation_into(std::size_t n, std::vector<std::uint32_t>& out);

  /// Sample k distinct indices from [0, n) (unordered, via partial
  /// Fisher–Yates). Requires k <= n.
  std::vector<std::uint32_t> sample_without_replacement(std::size_t n,
                                                        std::size_t k);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace dshuf
