#include "util/log.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"
#include "util/ranked_mutex.hpp"

namespace dshuf {

LogLevel& global_log_level() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

LogLevel parse_log_level(const std::string& s) {
  std::string lower(s);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  DSHUF_CHECK(false, "unknown log level: " << s);
}

namespace detail {

void emit_log_line(LogLevel level, const std::string& line) {
  static const char* kNames[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
  // kLog is the highest rank, so logging is legal whatever locks the
  // caller holds; the guard keeps concurrent lines from interleaving.
  static RankedMutex mu(LockRank::kLog, "util.log");
  std::ostream& os =
      level >= LogLevel::kWarn ? std::cerr : std::clog;
  std::lock_guard<RankedMutex> lk(mu);
  os << "[" << kNames[static_cast<int>(level)] << "] " << line << '\n';
}

}  // namespace detail
}  // namespace dshuf
