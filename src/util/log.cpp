#include "util/log.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"
#include "util/ranked_mutex.hpp"

namespace dshuf {

LogLevel& global_log_level() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

LogLevel parse_log_level(const std::string& s) {
  std::string lower(s);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  DSHUF_CHECK(false, "unknown log level: " << s);
}

namespace {

struct LogContext {
  bool active = false;
  int rank = 0;
  std::int64_t epoch = 0;
};

LogContext& thread_log_context() {
  thread_local LogContext ctx;
  return ctx;
}

}  // namespace

void log_context(int rank, std::int64_t epoch) {
  auto& ctx = thread_log_context();
  ctx.active = true;
  ctx.rank = rank;
  ctx.epoch = epoch;
}

void clear_log_context() { thread_log_context().active = false; }

LogContextState log_context_state() {
  const auto& ctx = thread_log_context();
  return LogContextState{ctx.active, ctx.rank, ctx.epoch};
}

void restore_log_context(const LogContextState& state) {
  auto& ctx = thread_log_context();
  ctx.active = state.active;
  ctx.rank = state.rank;
  ctx.epoch = state.epoch;
}

ScopedLogContext::ScopedLogContext(int rank, std::int64_t epoch) {
  const auto& ctx = thread_log_context();
  had_previous_ = ctx.active;
  previous_rank_ = ctx.rank;
  previous_epoch_ = ctx.epoch;
  log_context(rank, epoch);
}

ScopedLogContext::~ScopedLogContext() {
  if (had_previous_) {
    log_context(previous_rank_, previous_epoch_);
  } else {
    clear_log_context();
  }
}

namespace detail {

void emit_log_line(LogLevel level, const std::string& line) {
  static const char* kNames[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
  // kLog is the highest rank, so logging is legal whatever locks the
  // caller holds; the guard keeps concurrent lines from interleaving.
  static RankedMutex mu(LockRank::kLog, "util.log");
  std::ostream& os =
      level >= LogLevel::kWarn ? std::cerr : std::clog;
  const auto& ctx = thread_log_context();
  std::lock_guard<RankedMutex> lk(mu);
  os << "[" << kNames[static_cast<int>(level)] << "] ";
  if (ctx.active) os << "[r" << ctx.rank << " e" << ctx.epoch << "] ";
  os << line << '\n';
}

}  // namespace detail
}  // namespace dshuf
