// Minimal leveled logger.
//
// Global level is process-wide; benches default to Info, tests to Warn.
// Each LOG call formats into one string; emission is serialised by a
// LockRank::kLog ranked mutex (the highest rank, so logging is safe while
// holding any other project lock — see util/ranked_mutex.hpp).
//
// Threads that act for a (rank, epoch) — the comm rank threads during an
// exchange — install a per-thread log context; every line they emit is
// then prefixed "[r3 e5]", so interleaved multi-rank output stays
// attributable without each call site threading rank/epoch through.
#pragma once

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>

namespace dshuf {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Returns the mutable global log level (default Info).
LogLevel& global_log_level();

/// Parse "debug"/"info"/"warn"/"error" (case-insensitive); throws on junk.
LogLevel parse_log_level(const std::string& s);

/// Prefix every line the calling thread logs with "[r<rank> e<epoch>]"
/// until cleared. Thread-local; other threads are unaffected.
void log_context(int rank, std::int64_t epoch);
void clear_log_context();

/// Snapshot of the calling thread's log context, opaque except to
/// restore_log_context. Fiber schedulers capture one before switching
/// fibers and restore it after, so "[r e]" prefixes follow the logical
/// rank rather than the OS thread it happens to run on.
struct LogContextState {
  bool active = false;
  int rank = 0;
  std::int64_t epoch = 0;
};
[[nodiscard]] LogContextState log_context_state();
void restore_log_context(const LogContextState& state);

/// RAII log context: installs (rank, epoch) for the calling thread and
/// restores the previous context on scope exit.
class ScopedLogContext {
 public:
  ScopedLogContext(int rank, std::int64_t epoch);
  ScopedLogContext(const ScopedLogContext&) = delete;
  ScopedLogContext& operator=(const ScopedLogContext&) = delete;
  ~ScopedLogContext();

 private:
  bool had_previous_;
  int previous_rank_;
  std::int64_t previous_epoch_;
};

namespace detail {

void emit_log_line(LogLevel level, const std::string& line);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { emit_log_line(level_, oss_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};

struct LogSink {
  // Swallows the stream expression when the level is filtered out.
  void operator&(LogLine&) const {}
};

}  // namespace detail
}  // namespace dshuf

#define DSHUF_LOG(level)                                      \
  if (static_cast<int>(level) <                               \
      static_cast<int>(::dshuf::global_log_level())) {        \
  } else                                                      \
    ::dshuf::detail::LogLine(level)

#define LOG_DEBUG DSHUF_LOG(::dshuf::LogLevel::kDebug)
#define LOG_INFO DSHUF_LOG(::dshuf::LogLevel::kInfo)
#define LOG_WARN DSHUF_LOG(::dshuf::LogLevel::kWarn)
#define LOG_ERROR DSHUF_LOG(::dshuf::LogLevel::kError)
