#include "util/ranked_mutex.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dshuf {

namespace {

// Oldest acquisition first. Ranks along the chain are strictly ascending
// by construction, so the top is always the maximum held rank.
//
// Deliberately a POD array, NOT a std::vector: a vector's TLS destructor
// runs at __call_tls_dtors, BEFORE static destructors — and the global
// task scheduler's static teardown still takes ranked locks (its park
// lock, while joining workers). A vector here is therefore a use-after-
// free at every process exit with DSHUF_WORKERS set. POD thread_locals
// have no destructor, so the stack stays valid for the whole teardown.
// Depth is bounded by the rank count (strictly-ascending discipline);
// kMaxHeld leaves headroom for a log-only violation handler that opts
// into continuing past duplicates.
constexpr std::size_t kMaxHeld = 16;
thread_local HeldLock t_held[kMaxHeld];
thread_local std::size_t t_depth = 0;

void default_handler(const LockRankViolation& v) {
  const std::string report = v.describe();
  std::fprintf(stderr, "dshuf: %s\n", report.c_str());
  std::abort();
}

std::atomic<LockRankViolationHandler> g_handler{&default_handler};

}  // namespace

std::string LockRankViolation::describe() const {
  std::ostringstream oss;
  oss << "lock-rank violation: acquiring '" << attempted_name << "' (rank "
      << static_cast<int>(attempted_rank) << ") while holding";
  for (std::size_t i = held.size(); i-- > 0;) {
    oss << (i + 1 == held.size() ? " " : " <- ") << "'" << held[i].name
        << "' (rank " << static_cast<int>(held[i].rank) << ")";
  }
  oss << "; the documented order (DESIGN.md §8) requires strictly "
         "ascending ranks";
  return oss.str();
}

LockRankViolationHandler set_lock_rank_violation_handler(
    LockRankViolationHandler handler) {
  return g_handler.exchange(handler != nullptr ? handler : &default_handler,
                            std::memory_order_seq_cst);
}

std::vector<HeldLock> current_lock_chain() {
  return {t_held, t_held + t_depth};
}

namespace detail {

void note_acquire(LockRank rank, const char* name) {
  if (t_depth > 0 && rank <= t_held[t_depth - 1].rank) {
    LockRankViolation v;
    v.attempted_rank = rank;
    v.attempted_name = name;
    v.held.assign(t_held, t_held + t_depth);
    g_handler.load(std::memory_order_acquire)(v);
    // A handler that returns opted into continuing (e.g. log-only mode);
    // fall through and record the acquisition so unlock stays balanced.
  }
  if (t_depth < kMaxHeld) {
    t_held[t_depth++] = HeldLock{rank, name};
  }
  // Past kMaxHeld (only reachable under a continuing handler) the entry
  // is dropped; note_release's search-by-identity shrugs that off.
}

void note_release(LockRank rank, const char* name) {
  for (std::size_t i = t_depth; i-- > 0;) {
    if (t_held[i].rank == rank && t_held[i].name == name) {
      for (std::size_t j = i + 1; j < t_depth; ++j) {
        t_held[j - 1] = t_held[j];
      }
      --t_depth;
      return;
    }
  }
}

}  // namespace detail
}  // namespace dshuf
