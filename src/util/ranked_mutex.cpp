#include "util/ranked_mutex.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dshuf {

namespace {

// Oldest acquisition first. Ranks along the chain are strictly ascending
// by construction, so back() is always the maximum held rank.
thread_local std::vector<HeldLock> t_held;

void default_handler(const LockRankViolation& v) {
  const std::string report = v.describe();
  std::fprintf(stderr, "dshuf: %s\n", report.c_str());
  std::abort();
}

std::atomic<LockRankViolationHandler> g_handler{&default_handler};

}  // namespace

std::string LockRankViolation::describe() const {
  std::ostringstream oss;
  oss << "lock-rank violation: acquiring '" << attempted_name << "' (rank "
      << static_cast<int>(attempted_rank) << ") while holding";
  for (std::size_t i = held.size(); i-- > 0;) {
    oss << (i + 1 == held.size() ? " " : " <- ") << "'" << held[i].name
        << "' (rank " << static_cast<int>(held[i].rank) << ")";
  }
  oss << "; the documented order (DESIGN.md §8) requires strictly "
         "ascending ranks";
  return oss.str();
}

LockRankViolationHandler set_lock_rank_violation_handler(
    LockRankViolationHandler handler) {
  return g_handler.exchange(handler != nullptr ? handler : &default_handler);
}

std::vector<HeldLock> current_lock_chain() { return t_held; }

namespace detail {

void note_acquire(LockRank rank, const char* name) {
  if (!t_held.empty() && rank <= t_held.back().rank) {
    LockRankViolation v;
    v.attempted_rank = rank;
    v.attempted_name = name;
    v.held = t_held;
    g_handler.load()(v);
    // A handler that returns opted into continuing (e.g. log-only mode);
    // fall through and record the acquisition so unlock stays balanced.
  }
  t_held.push_back(HeldLock{rank, name});
}

void note_release(LockRank rank, const char* name) {
  for (std::size_t i = t_held.size(); i-- > 0;) {
    if (t_held[i].rank == rank && t_held[i].name == name) {
      t_held.erase(t_held.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

}  // namespace detail
}  // namespace dshuf
