#include "util/json.hpp"

#include <cmath>
#include <cstdlib>

#include "util/error.hpp"

namespace dshuf::json {

bool Value::as_bool() const {
  DSHUF_CHECK(kind_ == Kind::kBool, "json: not a bool");
  return bool_;
}

double Value::as_number() const {
  DSHUF_CHECK(kind_ == Kind::kNumber, "json: not a number");
  return num_;
}

std::int64_t Value::as_int() const {
  const double d = as_number();
  DSHUF_CHECK(std::nearbyint(d) == d, "json: number is not integral: " << d);
  return static_cast<std::int64_t>(d);
}

const std::string& Value::as_string() const {
  DSHUF_CHECK(kind_ == Kind::kString, "json: not a string");
  return str_;
}

const Array& Value::as_array() const {
  DSHUF_CHECK(kind_ == Kind::kArray, "json: not an array");
  return *arr_;
}

const std::vector<std::string>& Value::keys() const {
  DSHUF_CHECK(kind_ == Kind::kObject, "json: not an object");
  return obj_->order;
}

bool Value::has(const std::string& key) const {
  return kind_ == Kind::kObject &&
         obj_->members.find(key) != obj_->members.end();
}

const Value& Value::at(const std::string& key) const {
  DSHUF_CHECK(kind_ == Kind::kObject, "json: not an object");
  const auto it = obj_->members.find(key);
  DSHUF_CHECK(it != obj_->members.end(), "json: missing key '" << key << "'");
  return it->second;
}

Value Value::make_null() { return {}; }

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double d) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::make_array(Array a) {
  Value v;
  v.kind_ = Kind::kArray;
  v.arr_ = std::make_shared<Array>(std::move(a));
  return v;
}

Value Value::make_object() {
  Value v;
  v.kind_ = Kind::kObject;
  v.obj_ = std::make_shared<Object>();
  return v;
}

void Value::set(std::string key, Value v) {
  DSHUF_CHECK(kind_ == Kind::kObject, "json: set() on a non-object");
  if (obj_->members.find(key) == obj_->members.end()) {
    obj_->order.push_back(key);
  }
  obj_->members[std::move(key)] = std::move(v);
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    DSHUF_CHECK(pos_ == text_.size(),
                "json: trailing garbage at offset " << pos_);
    return v;
  }

 private:
  [[nodiscard]] char peek() const {
    DSHUF_CHECK(pos_ < text_.size(),
                "json: unexpected end of input at offset " << pos_);
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    DSHUF_CHECK(peek() == c, "json: expected '" << c << "' at offset "
                                                << pos_ << ", got '"
                                                << peek() << "'");
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value::make_string(parse_string());
      case 't':
        DSHUF_CHECK(literal("true"), "json: bad literal at offset " << pos_);
        return Value::make_bool(true);
      case 'f':
        DSHUF_CHECK(literal("false"), "json: bad literal at offset " << pos_);
        return Value::make_bool(false);
      case 'n':
        DSHUF_CHECK(literal("null"), "json: bad literal at offset " << pos_);
        return Value::make_null();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value obj = Value::make_object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      obj.set(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return obj;
      DSHUF_CHECK(c == ',', "json: expected ',' or '}' at offset "
                                << (pos_ - 1));
    }
  }

  Value parse_array() {
    expect('[');
    Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return Value::make_array(std::move(items));
      DSHUF_CHECK(c == ',', "json: expected ',' or ']' at offset "
                                << (pos_ - 1));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              DSHUF_CHECK(false, "json: bad \\u escape at offset " << pos_);
            }
          }
          // UTF-8 encode the BMP code point (surrogates passed through
          // as-is is fine for our own exporters, which never emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          DSHUF_CHECK(false, "json: bad escape '\\" << esc << "' at offset "
                                                    << pos_);
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    DSHUF_CHECK(pos_ > start, "json: expected a value at offset " << start);
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    DSHUF_CHECK(end != nullptr && *end == '\0',
                "json: bad number '" << tok << "' at offset " << start);
    return Value::make_number(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace dshuf::json
