// Vector-backed FIFO that retains its capacity.
//
// std::deque is the obvious container for a mailbox, but libstdc++'s deque
// allocates and frees fixed-size nodes as elements cycle through it — a
// steady push/pop workload keeps touching the heap forever. RingQueue
// stores elements in a power-of-two circular buffer that only grows: once
// the queue has seen its high-water occupancy, push/pop/erase are
// allocation-free, which is what the zero-allocation exchange steady state
// (tests/test_exchange_alloc.cpp) needs from the comm mailboxes.
//
// The interface is the subset the mailbox uses: FIFO push_back/pop_front,
// plus indexed access and erase-at-index for (source, tag) matching, which
// must be able to take a message out of the middle while preserving the
// arrival order of the rest.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace dshuf {

template <typename T>
class RingQueue {
 public:
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Element `i` in queue order (0 = oldest).
  [[nodiscard]] T& operator[](std::size_t i) {
    DSHUF_CHECK_LT(i, size_, "ring queue index out of range");
    return slots_[mask(head_ + i)];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    DSHUF_CHECK_LT(i, size_, "ring queue index out of range");
    return slots_[mask(head_ + i)];
  }

  void push_back(T value) {
    if (size_ == slots_.size()) grow();
    slots_[mask(head_ + size_)] = std::move(value);
    ++size_;
  }

  /// Remove and return the oldest element.
  T pop_front() {
    DSHUF_CHECK(size_ > 0, "pop_front on an empty ring queue");
    T out = std::move(slots_[mask(head_)]);
    head_ = mask(head_ + 1);
    --size_;
    return out;
  }

  /// Remove and return element `i`, preserving the order of the rest.
  /// Shifts the shorter side, so taking the oldest or newest element is
  /// O(1) and the worst case is size/2 moves.
  T take(std::size_t i) {
    DSHUF_CHECK_LT(i, size_, "take index out of range");
    T out = std::move(slots_[mask(head_ + i)]);
    if (i < size_ - i - 1) {
      for (std::size_t j = i; j > 0; --j) {
        slots_[mask(head_ + j)] = std::move(slots_[mask(head_ + j - 1)]);
      }
      head_ = mask(head_ + 1);
    } else {
      for (std::size_t j = i; j + 1 < size_; ++j) {
        slots_[mask(head_ + j)] = std::move(slots_[mask(head_ + j + 1)]);
      }
    }
    --size_;
    return out;
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) {
      slots_[mask(head_ + i)] = T{};
    }
    head_ = 0;
    size_ = 0;
  }

 private:
  [[nodiscard]] std::size_t mask(std::size_t i) const {
    return i & (slots_.size() - 1);
  }

  void grow() {
    const std::size_t new_cap = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<T> fresh(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      fresh[i] = std::move(slots_[mask(head_ + i)]);
    }
    slots_ = std::move(fresh);
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dshuf
