// Tiny command-line flag parser for examples and benches.
//
// Supports --name=value and --name value forms plus boolean switches.
// Unknown flags abort with the usage text so typos surface immediately.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dshuf {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Register a flag with a default value and help string; returns *this
  /// for chaining. All values are stored as strings and converted on read.
  ArgParser& flag(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parse argv. On "--help" prints usage and returns false (caller should
  /// exit 0). Throws CheckError on unknown flags or missing values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Comma-separated list of int64 (e.g. --workers=64,128,256).
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name) const;
  /// Comma-separated list of doubles (e.g. --q=0.1,0.3).
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& name) const;

  void print_usage() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::string value;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace dshuf
