// DSHUF_NOALLOC: a statically-checked promise that a function's steady
// state performs no heap allocation.
//
// The marker expands to nothing at compile time — it is a contract token
// for `tools/dshuf_analyze`, whose no-alloc pass walks the call graph from
// every marked function and reports any reachable `new`, malloc-family
// call, std::to_string / make_unique / make_shared, or growth operation on
// a standard container (push_back, resize, insert, ...).
//
// Exemptions, enforced by the analyzer (DESIGN.md §12):
//   * catch blocks and DSHUF_CHECK failure paths — error handling may
//     allocate;
//   * sites annotated `// analyze:alloc-ok <why>` — for amortised growth
//     into capacity-retaining pooled buffers, which is how the exchange
//     and task layers reach their allocation-free steady state
//     (allocations happen during warm-up, capacity is reused after).
//
// Usage, on the definition:
//
//   DSHUF_NOALLOC void Scheduler::run_task(Task& t) { ... }
#pragma once

#define DSHUF_NOALLOC
