#include "util/argparse.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/error.hpp"

namespace dshuf {

ArgParser& ArgParser::flag(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  DSHUF_CHECK(!flags_.count(name), "duplicate flag --" << name);
  flags_[name] = Flag{default_value, help, default_value};
  order_.push_back(name);
  return *this;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    DSHUF_CHECK(arg.rfind("--", 0) == 0,
                "unexpected positional argument: " << arg);
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      DSHUF_CHECK(it != flags_.end(), "unknown flag --" << name);
      const bool is_bool = it->second.default_value == "true" ||
                           it->second.default_value == "false";
      if (is_bool) {
        value = "true";
      } else {
        DSHUF_CHECK(i + 1 < argc, "flag --" << name << " needs a value");
        value = argv[++i];
      }
    }
    auto it = flags_.find(name);
    DSHUF_CHECK(it != flags_.end(), "unknown flag --" << name);
    it->second.value = value;
  }
  return true;
}

std::string ArgParser::get(const std::string& name) const {
  auto it = flags_.find(name);
  DSHUF_CHECK(it != flags_.end(), "flag --" << name << " was not registered");
  return it->second.value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const std::int64_t out = std::stoll(v, &pos);
  DSHUF_CHECK_EQ(pos, v.size(), "flag --" << name << " is not an integer: "
                                          << v);
  return out;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const double out = std::stod(v, &pos);
  DSHUF_CHECK_EQ(pos, v.size(), "flag --" << name << " is not a number: "
                                          << v);
  return out;
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  DSHUF_CHECK(false, "flag --" << name << " is not a boolean: " << v);
}

std::vector<std::int64_t> ArgParser::get_int_list(
    const std::string& name) const {
  std::vector<std::int64_t> out;
  std::stringstream ss(get(name));
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoll(tok));
  }
  return out;
}

std::vector<double> ArgParser::get_double_list(const std::string& name) const {
  std::vector<double> out;
  std::stringstream ss(get(name));
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stod(tok));
  }
  return out;
}

void ArgParser::print_usage() const {
  // lint:stdout-ok --help output is user-facing CLI text, not a log line
  std::cout << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const auto& f = flags_.at(name);
    // lint:stdout-ok --help output is user-facing CLI text, not a log line
    std::cout << "  --" << name << " (default: " << f.default_value << ")\n"
              << "      " << f.help << "\n";
  }
}

}  // namespace dshuf
