// Wall-clock stopwatch for coarse timing of examples and benches.
#pragma once

#include <chrono>

namespace dshuf {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dshuf
