// Minimal JSON document model and recursive-descent parser.
//
// Exists so tools/dshuf_trace can read back the observability artifacts
// (Chrome trace-event JSON, metrics snapshots) without an external
// dependency. Objects preserve insertion order and look up by key;
// numbers are doubles (trace timestamps fit well inside the 2^53 exact
// range). Parsing a malformed document throws CheckError with the byte
// offset; this is a validator as much as a reader (dshuf_trace --check).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dshuf::json {

class Value;
using Array = std::vector<Value>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;

  /// Object access: keys in document order.
  [[nodiscard]] const std::vector<std::string>& keys() const;
  /// True when this is an object containing `key`.
  [[nodiscard]] bool has(const std::string& key) const;
  /// Member lookup; throws CheckError when absent or not an object.
  [[nodiscard]] const Value& at(const std::string& key) const;

  static Value make_null();
  static Value make_bool(bool b);
  static Value make_number(double d);
  static Value make_string(std::string s);
  static Value make_array(Array a);
  static Value make_object();
  /// Appends (object must have been created with make_object).
  void set(std::string key, Value v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  struct Object {
    std::vector<std::string> order;
    std::map<std::string, Value> members;
  };
  std::shared_ptr<Object> obj_;
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws CheckError on malformed input.
Value parse(const std::string& text);

}  // namespace dshuf::json
