// Non-owning, non-allocating callable reference.
//
// std::function type-erases by (possibly) heap-allocating its target,
// which disqualifies it from the allocation-free steady-state read paths
// (util/noalloc.hpp). FunctionRef stores one void* + one function pointer
// and never allocates; the referenced callable must outlive the call —
// the intended shape is a stack lambda passed straight into a store read:
//
//   store.read(id, [&](std::span<const std::byte> p) { consume(p); });
//
// Only the call signature `R(Args...)` specialisation exists, mirroring
// the C++26 std::function_ref surface this will eventually migrate to.
#pragma once

#include <type_traits>
#include <utility>

namespace dshuf {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor) — mirrors function_ref.
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace dshuf
