// Runtime check / contract utilities.
//
// DSHUF_CHECK(cond, msg): always-on invariant check that throws
// dshuf::CheckError with file/line context. Used at module boundaries
// (P.6/P.7 of the C++ Core Guidelines: catch run-time errors early).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dshuf {

/// Exception thrown when a DSHUF_CHECK fails.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream oss;
  oss << "check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw CheckError(oss.str());
}

}  // namespace detail
}  // namespace dshuf

// Always-on check (also active in Release: experiment validity depends on it).
#define DSHUF_CHECK(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::std::ostringstream dshuf_check_oss;                             \
      dshuf_check_oss << msg; /* NOLINT */                              \
      ::dshuf::detail::check_failed(#cond, __FILE__, __LINE__,          \
                                    dshuf_check_oss.str());             \
    }                                                                   \
  } while (false)

#define DSHUF_CHECK_EQ(a, b, msg) \
  DSHUF_CHECK((a) == (b), msg << " (" << (a) << " != " << (b) << ")")
#define DSHUF_CHECK_LT(a, b, msg) \
  DSHUF_CHECK((a) < (b), msg << " (" << (a) << " >= " << (b) << ")")
#define DSHUF_CHECK_LE(a, b, msg) \
  DSHUF_CHECK((a) <= (b), msg << " (" << (a) << " > " << (b) << ")")
#define DSHUF_CHECK_GT(a, b, msg) \
  DSHUF_CHECK((a) > (b), msg << " (" << (a) << " <= " << (b) << ")")
#define DSHUF_CHECK_GE(a, b, msg) \
  DSHUF_CHECK((a) >= (b), msg << " (" << (a) << " < " << (b) << ")")
