// Lock-rank deadlock prevention.
//
// Every mutex in dshuf carries a LockRank; a thread may only acquire a
// mutex whose rank is STRICTLY greater than every rank it already holds.
// Acquisitions therefore always form an ascending chain, which makes a
// cross-thread acquisition cycle (the deadlock precondition) impossible.
// The project-wide order, documented in DESIGN.md §8, is
//
//   task.scheduler < comm.mailbox < comm.request < comm.barrier
//       < comm.fault < data.batch_loader < io.file_store < obs.registry
//       < util.log
//
// i.e. the task scheduler's park/wake lock is lowest (it is only ever
// taken at the queue boundary with nothing else held, and is NEVER held
// while a task body runs), the comm layer is next (its locks are the
// innermost of the instrumented modules) and the logger is highest
// (logging is always safe, whatever you hold).
//
// Checking is compiled in when DSHUF_LOCK_RANK_CHECKS is defined (the
// default build does this; configure with -DDSHUF_LOCK_RANK_CHECKS=OFF to
// strip it). A violation invokes the installed handler with the attempted
// acquisition and the thread's full held chain; the default handler prints
// the chain to stderr and aborts. Tests install a throwing handler to
// assert on the report without dying.
//
// RankedMutex satisfies BasicLockable + Lockable, so it composes with
// std::lock_guard / std::unique_lock; pair it with
// std::condition_variable_any (std::condition_variable requires a raw
// std::mutex).
#pragma once

#include <mutex>
#include <string>
#include <vector>

namespace dshuf {

/// Global acquisition order. Values are spaced so a future mutex can slot
/// between existing ranks without renumbering.
enum class LockRank : int {
  kTaskScheduler = 5,  ///< task::Scheduler park/wake lock — below every
                       ///< other rank: it is acquired with no locks held
                       ///< (submit/park paths only) and released before
                       ///< any task body executes, so holding ANY project
                       ///< lock while submitting tasks is a violation the
                       ///< checker reports
  kCommMailbox = 10,   ///< comm::detail::RankMailbox::mu
  kCommRequest = 12,   ///< comm::detail::RequestState::mu
  kCommBarrier = 14,   ///< comm::detail::WorldState barrier
  kFault = 20,         ///< comm::FaultInjector queue/stats
  kShufflePolicy = 24, ///< shuffle::Topology process-wide policy slot —
                       ///< read once per epoch with no other lock held
  kPlanCache = 25,     ///< shuffle plan interning cache (virtual-rank
                       ///< worlds share one plan per epoch through it)
  kBatchLoader = 30,   ///< data::BatchLoader prefetch queue
  kFileStore = 40,     ///< io::FileSampleStore directory ops
  kObs = 45,           ///< obs metrics registry / tracer buffers — above
                       ///< every instrumented module so metric
                       ///< registration and span flushes are legal while
                       ///< holding any project lock below the logger
  kLog = 50,           ///< util log line serialisation
};

/// One entry of a thread's held-lock chain, oldest acquisition first.
struct HeldLock {
  LockRank rank;
  const char* name;
};

/// Everything the violation handler learns about a bad acquisition.
struct LockRankViolation {
  LockRank attempted_rank;
  const char* attempted_name;
  std::vector<HeldLock> held;  ///< full chain at the moment of the attempt

  /// Human-readable report naming the offending chain, e.g.
  /// "acquiring 'comm.mailbox' (rank 10) while holding
  ///  'comm.fault' (rank 20) <- 'util.log' (rank 50)".
  [[nodiscard]] std::string describe() const;
};

using LockRankViolationHandler = void (*)(const LockRankViolation&);

/// Install a handler (nullptr restores the default print-and-abort one).
/// Returns the previously installed handler. Not thread-safe against
/// concurrent violations — intended for test setup.
LockRankViolationHandler set_lock_rank_violation_handler(
    LockRankViolationHandler handler);

/// The calling thread's current held chain (oldest first). Test hook.
[[nodiscard]] std::vector<HeldLock> current_lock_chain();

namespace detail {
/// Check the rank discipline and record the acquisition. Called BEFORE
/// blocking on the underlying mutex so a would-deadlock acquisition is
/// reported instead of hanging. A throwing handler leaves the chain
/// untouched (the mutex is never locked); a returning handler opts into
/// continuing and the acquisition is recorded normally.
void note_acquire(LockRank rank, const char* name);
/// Forget one acquisition (erases the newest matching entry, so unlock
/// order need not mirror lock order).
void note_release(LockRank rank, const char* name);
}  // namespace detail

class RankedMutex {
 public:
  RankedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock() {
#ifdef DSHUF_LOCK_RANK_CHECKS
    detail::note_acquire(rank_, name_);
#endif
    mu_.lock();
  }

  bool try_lock() {
#ifdef DSHUF_LOCK_RANK_CHECKS
    // try_lock cannot deadlock, but an out-of-order try_lock still breaks
    // the documented order for everything acquired after it — hold it to
    // the same discipline.
    detail::note_acquire(rank_, name_);
    if (mu_.try_lock()) return true;
    detail::note_release(rank_, name_);
    return false;
#else
    return mu_.try_lock();
#endif
  }

  void unlock() {
    mu_.unlock();
#ifdef DSHUF_LOCK_RANK_CHECKS
    detail::note_release(rank_, name_);
#endif
  }

  [[nodiscard]] LockRank rank() const { return rank_; }
  [[nodiscard]] const char* name() const { return name_; }

 private:
  std::mutex mu_;
  LockRank rank_;
  const char* name_;
};

}  // namespace dshuf
