// Text-table and CSV emission for bench output.
//
// Benches print each reproduced figure/table as (1) an aligned text table
// for human reading and (2) optionally a CSV file for plotting. Cells are
// stored as strings; numeric helpers format consistently.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dshuf {

/// Column-aligned text table with a title and header row.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  TextTable& header(std::vector<std::string> cols);
  TextTable& row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Render with box-drawing separators to the stream.
  void print(std::ostream& os) const;

  /// Write as CSV (header + rows) to the given path. Returns false on I/O
  /// failure (missing directory etc.) without throwing.
  bool write_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used by benches for consistent numeric output.
std::string fmt_double(double v, int precision = 3);
std::string fmt_percent(double fraction, int precision = 1);
std::string fmt_bytes(double bytes);

}  // namespace dshuf
