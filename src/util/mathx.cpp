#include "util/mathx.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace dshuf {

double log_factorial(double n) {
  DSHUF_CHECK_GE(n, 0.0, "log_factorial of negative value");
  return std::lgamma(n + 1.0);
}

double log_falling_factorial(double n, double k) {
  DSHUF_CHECK_GE(k, 0.0, "negative k in falling factorial");
  DSHUF_CHECK_LE(k, n, "falling factorial requires k <= n");
  return std::lgamma(n + 1.0) - std::lgamma(n - k + 1.0);
}

double exp_log_ratio(double log_num, double log_den) {
  const double d = log_num - log_den;
  if (d < std::log(std::numeric_limits<double>::min()) + 2.0) return 0.0;
  if (d > std::log(std::numeric_limits<double>::max()) - 2.0) {
    return std::numeric_limits<double>::max();
  }
  return std::exp(d);
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  double sum = 0.0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(ss / static_cast<double>(xs.size() - 1))
                 : 0.0;
  return s;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace dshuf
